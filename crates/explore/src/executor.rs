//! The sweep executor: capture each workload once, replay what the
//! stream cache already holds, simulate only what it does not.
//!
//! Points of a sweep share workload cells, so the expensive part of a
//! naive point-by-point run — regenerating the application's allocation
//! event sequence — is pure waste. [`run_sweep_with`] generates one
//! event stream per (program, scale) axis cell, wraps each in an
//! [`Arc`], and drives every point of that cell off the shared trace
//! through the engine's worker pool; each point pays only its own
//! allocator simulation and sinks.
//!
//! With a stream cache configured ([`ExecOptions::stream_cache`]) the
//! executor goes further: every point is probed against the cache
//! first, and a point whose allocator-specific stream is already stored
//! skips generation *and* allocator simulation — the engine replays the
//! recorded reference stream straight into the sinks and reports the
//! sidecar's frozen metrics. Points that miss populate the cache from
//! the shared trace (the engine keys them by their workload provenance,
//! [`alloc_locality::Experiment::stream_source`]), so re-running a
//! sweep — or any overlapping one — is near-free and cells whose every
//! point is cached never synthesize a trace at all.
//!
//! Replayed streams are bit-identical to generated ones (the generator
//! is deterministic and the engine's drive loop is source-agnostic), so
//! each point's [`RunReport`] is byte-identical to a direct run of the
//! same [`JobSpec`] — the invariant the bit-identity tests and the
//! `explore --bench` gate enforce against [`run_sweep_naive`] — and a
//! warm sweep's point rows are byte-identical to the cold sweep's that
//! populated the cache (the warm-lane `cmp` gate in CI).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use alloc_locality::job_spec::program_by_label;
use alloc_locality::{
    default_threads, run_parallel_instrumented, EngineError, Experiment, JobSpec, RunReport,
    RunResult, SpecError,
};
use workloads::{AppEvent, Scale};

use crate::report::{SweepExec, SweepReport};
use crate::sweep::SweepSpec;

/// Why a sweep failed.
#[derive(Debug)]
pub enum ExploreError {
    /// The sweep (or one of its points) was rejected.
    Spec(SpecError),
    /// A point's simulation failed.
    Engine(EngineError),
    /// The finished results could not be assembled into a report.
    Report(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Spec(e) => write!(f, "invalid sweep: {e}"),
            ExploreError::Engine(e) => write!(f, "sweep point failed: {e}"),
            ExploreError::Report(e) => write!(f, "assembling sweep report: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<SpecError> for ExploreError {
    fn from(e: SpecError) -> Self {
        ExploreError::Spec(e)
    }
}

impl From<EngineError> for ExploreError {
    fn from(e: EngineError) -> Self {
        ExploreError::Engine(e)
    }
}

/// How a sweep executes: worker count and stream-cache adoption.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker threads; 0 auto-detects like
    /// [`alloc_locality::default_threads`].
    pub threads: usize,
    /// Persistent stream-cache directory; `None` disables replay and
    /// population (every point simulates from the shared trace).
    pub stream_cache: Option<PathBuf>,
    /// Size bound for the cache directory, when one is set.
    pub stream_cache_bytes: Option<u64>,
}

impl ExecOptions {
    /// Plain shared-trace execution on `threads` workers, no cache.
    pub fn threads(threads: usize) -> ExecOptions {
        ExecOptions { threads, ..ExecOptions::default() }
    }

    /// The worker count this configuration resolves to.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }
}

/// The per-cell trace pool plus the cache tallies accumulated while
/// building a sweep's experiments.
pub(crate) struct JobSet {
    pub(crate) jobs: Vec<Experiment>,
    pub(crate) stream_hits: u64,
    pub(crate) stream_misses: u64,
}

/// Builds one experiment per point: a cache-replay run for every point
/// whose stream is already stored, a shared-trace run (populating when a
/// cache is configured) for the rest. Traces are synthesized lazily per
/// (program, scale) cell, so a fully-cached cell generates nothing.
pub(crate) fn build_jobs(points: &[JobSpec], opts: &ExecOptions) -> JobSet {
    let mut pool: HashMap<(String, u64), Arc<Vec<AppEvent>>> = HashMap::new();
    let mut set =
        JobSet { jobs: Vec::with_capacity(points.len()), stream_hits: 0, stream_misses: 0 };
    let attach = |exp: Experiment| match &opts.stream_cache {
        Some(dir) => exp.stream_cache(dir).stream_cache_bytes(opts.stream_cache_bytes),
        None => exp,
    };
    for point in points {
        let program = program_by_label(&point.program).expect("validated");
        if opts.stream_cache.is_some() {
            let probe = attach(point.to_experiment().expect("validated"));
            if probe.stream_cached() == Some(true) {
                // Warm: the engine replays the stored stream; the shared
                // trace is never consulted (nor generated, if every
                // point of its cell is warm).
                set.stream_hits += 1;
                set.jobs.push(probe);
                continue;
            }
            set.stream_misses += 1;
        }
        let events = pool
            .entry((point.program.clone(), point.scale.to_bits()))
            .or_insert_with(|| Arc::new(program.spec().events(Scale(point.scale)).collect()));
        let mut exp = Experiment::with_shared_events(
            program.label(),
            Arc::clone(events),
            point.to_choice().expect("validated"),
        )
        .options(point.to_options().expect("validated"));
        if opts.stream_cache.is_some() {
            // Declaring the trace's provenance keys the populating run
            // identically to a direct spec-built run, so whatever this
            // sweep stores, later sweeps (and `repro`) replay.
            exp = attach(exp.stream_source(program.spec()));
        }
        set.jobs.push(exp);
    }
    set
}

/// Runs every point of a sweep — shared traces per workload cell, cache
/// replay when configured and warm — and returns the assembled
/// [`SweepReport`]. `progress` is called after each finished point with
/// the completed count and that point's result.
///
/// # Errors
///
/// Returns [`ExploreError::Spec`] for an invalid sweep and
/// [`ExploreError::Engine`] for the first simulation failure.
pub fn run_sweep_with(
    spec: &SweepSpec,
    opts: &ExecOptions,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<SweepReport, ExploreError> {
    spec.validate()?;
    let n = spec.normalized();
    let set = build_jobs(&n.points(), opts);
    let exec = SweepExec {
        stream_hits: set.stream_hits,
        stream_misses: set.stream_misses,
        adaptive: None,
    };
    let results = run_parallel_instrumented(set.jobs, opts.resolved_threads(), progress)?;
    let reports = results.into_iter().map(|(r, m)| RunReport::new(r, m)).collect();
    SweepReport::assemble_with(&n, reports, &exec).map_err(ExploreError::Report)
}

/// [`run_sweep_with`] without a stream cache — the plain shared-trace
/// executor.
///
/// # Errors
///
/// As [`run_sweep_with`].
pub fn run_sweep(
    spec: &SweepSpec,
    threads: usize,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<SweepReport, ExploreError> {
    run_sweep_with(spec, &ExecOptions::threads(threads), progress)
}

/// The naive executor: every point builds its experiment directly from
/// the job spec, regenerating the event stream from scratch. Produces a
/// report byte-identical to [`run_sweep`]'s; exists as the baseline the
/// `explore --bench` speedup gate measures against.
///
/// # Errors
///
/// Returns [`ExploreError::Spec`] for an invalid sweep and
/// [`ExploreError::Engine`] for the first simulation failure.
pub fn run_sweep_naive(
    spec: &SweepSpec,
    threads: usize,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<SweepReport, ExploreError> {
    spec.validate()?;
    let n = spec.normalized();
    let jobs = n.points().iter().map(|point| point.to_experiment().expect("validated")).collect();
    let threads = if threads == 0 { default_threads() } else { threads };
    let results = run_parallel_instrumented(jobs, threads, progress)?;
    let reports = results.into_iter().map(|(r, m)| RunReport::new(r, m)).collect();
    SweepReport::assemble(&n, reports).map_err(ExploreError::Report)
}
