//! `alloc-locality-explore`: design-space exploration over allocator
//! configurations.
//!
//! The paper tunes its allocators by hand — one split threshold, one
//! fast-list bound, one set of rounding classes. This crate sweeps
//! those knobs systematically:
//!
//! * [`SweepSpec`] declares parameter grids over the allocator configs
//!   the engine already exposes (`FirstFitConfig`, `GnuGxxConfig`,
//!   `QuickFitConfig`, `BsdConfig`, `PredictiveConfig`), expanded
//!   deterministically into content-hashed [`JobSpec`] points.
//! * [`run_sweep`] captures the workload's event sequence **once** and
//!   drives every point off the shared trace through the engine's
//!   worker pool — each point pays only allocator simulation and sinks,
//!   never workload regeneration.
//! * [`pareto_front`] scores each point on miss rate × instruction
//!   cost × memory overhead and prunes the dominated ones.
//! * [`SweepReport`] is the versioned `alloc-locality.sweep-report` v1
//!   JSONL artifact: header, per-point rows (each embedding the point's
//!   run report, byte-identical to a direct run), and the Pareto front.
//!
//! The serve daemon exposes the same machinery as `POST /sweeps`; the
//! `explore` binary runs sweeps offline and benchmarks the shared-trace
//! executor against naive regeneration.
//!
//! [`JobSpec`]: alloc_locality::JobSpec

pub mod executor;
pub mod pareto;
pub mod report;
pub mod sweep;

pub use executor::{run_sweep, run_sweep_naive, ExploreError};
pub use pareto::{pareto_front, Objectives};
pub use report::{
    SweepFrontRow, SweepHeader, SweepPointRow, SweepReport, SWEEP_REPORT_SCHEMA,
    SWEEP_REPORT_VERSION,
};
pub use sweep::{GridSpec, SweepSpec, MAX_SWEEP_POINTS};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepSpec {
        SweepSpec {
            cache_kb: vec![16],
            paging: Some(false),
            ..SweepSpec::over(
                "espresso",
                0.002,
                vec![
                    GridSpec { split_threshold: vec![8, 24], ..GridSpec::baseline("FirstFit") },
                    GridSpec { fast_max: vec![16, 64], ..GridSpec::baseline("QuickFit") },
                    GridSpec { min_shift: vec![4, 6], ..GridSpec::baseline("BSD") },
                ],
            )
        }
    }

    #[test]
    fn sweep_runs_assemble_and_validate() {
        let spec = tiny_sweep();
        let report = run_sweep(&spec, 2, |_, _| {}).expect("sweep runs");
        assert_eq!(report.points.len(), 6);
        assert_eq!(report.header.sweep_id, spec.sweep_id());
        assert_eq!(report.header.families, vec!["FirstFit", "QuickFit", "BSD"]);
        report.validate().expect("fresh report validates");
        assert!(!report.front.front.is_empty(), "some point is undominated");
        // Round trip through the JSONL wire form.
        let text = report.to_jsonl();
        let back = SweepReport::parse(&text).expect("parse");
        assert_eq!(back, report);
        back.validate().expect("parsed report validates");
    }

    #[test]
    fn sweep_points_are_byte_identical_to_direct_runs() {
        // The tentpole contract: a point driven off the shared event
        // trace emits exactly the bytes a direct spec-built run does —
        // after normalize_report zeroes both runs' span wall-times, the
        // one field that is execution telemetry rather than simulation
        // output.
        let spec = tiny_sweep();
        let report = run_sweep(&spec, 2, |_, _| {}).expect("sweep runs");
        for row in &report.points {
            let mut direct =
                row.spec.to_experiment().expect("point builds").report().expect("runs");
            assert_eq!(row.report.result, direct.result, "simulation output diverged");
            assert_eq!(row.report.metrics.counters, direct.metrics.counters);
            assert_eq!(row.report.metrics.histograms, direct.metrics.histograms);
            report::normalize_report(&mut direct);
            assert_eq!(
                row.report.to_jsonl_line(),
                direct.to_jsonl_line(),
                "sweep point {} diverged from its direct run",
                row.allocator
            );
        }
    }

    #[test]
    fn shared_and_naive_executors_agree() {
        let spec = tiny_sweep();
        let shared = run_sweep(&spec, 2, |_, _| {}).expect("shared");
        let naive = run_sweep_naive(&spec, 2, |_, _| {}).expect("naive");
        assert_eq!(shared.to_jsonl(), naive.to_jsonl());
    }

    #[test]
    fn validate_rejects_tampered_reports() {
        let report = run_sweep(&tiny_sweep(), 2, |_, _| {}).expect("sweep runs");

        let mut bad = report.clone();
        bad.header.points += 1;
        assert!(bad.validate().unwrap_err().contains("points"));

        let mut bad = report.clone();
        bad.points[0].point_id = "0000000000000000".into();
        assert!(bad.validate().unwrap_err().contains("content address"));

        let mut bad = report.clone();
        bad.points[0].objectives.instructions += 1;
        assert!(bad.validate().unwrap_err().contains("objectives"));

        let mut bad = report.clone();
        bad.front.front.clear();
        assert!(bad.validate().unwrap_err().contains("Pareto front"));

        let mut bad = report.clone();
        for p in &mut bad.points {
            p.sweep_id = "ffffffffffffffff".into();
        }
        assert!(bad.validate().unwrap_err().contains("sweep_id"));
    }
}
