//! `alloc-locality-explore`: design-space exploration over allocator
//! configurations.
//!
//! The paper tunes its allocators by hand — one split threshold, one
//! fast-list bound, one set of rounding classes. This crate sweeps
//! those knobs systematically:
//!
//! * [`SweepSpec`] declares parameter grids over the allocator configs
//!   the engine already exposes (`FirstFitConfig`, `GnuGxxConfig`,
//!   `QuickFitConfig`, `BsdConfig`, `PredictiveConfig`) — optionally
//!   crossed with program and scale axes — expanded deterministically
//!   into content-hashed [`JobSpec`] points.
//! * [`run_sweep_with`] captures each workload cell's event sequence
//!   **once** and drives every point of that cell off the shared trace
//!   through the engine's worker pool; with a stream cache configured,
//!   points whose streams are already stored replay without generation
//!   *or* allocator simulation, so re-running a sweep is near-free.
//! * [`run_adaptive`] refines a coarse subgrid toward the Pareto front
//!   by bisecting numeric knob intervals under a point budget, reaching
//!   the exhaustive front at a fraction of its cost.
//! * [`pareto_front`] scores each point on miss rate × instruction
//!   cost × memory overhead and prunes the dominated ones.
//! * [`SweepReport`] is the versioned `alloc-locality.sweep-report`
//!   JSONL artifact (v2: stream-cache tallies, workload axes, and
//!   adaptive metadata in the header): header, per-point rows (each
//!   embedding the point's run report, byte-identical to a direct run),
//!   and the Pareto front.
//!
//! The serve daemon exposes the same machinery as `POST /sweeps`; the
//! `explore` binary runs sweeps offline and benchmarks the shared-trace
//! executor against naive regeneration, warm reruns against cold, and
//! adaptive refinement against exhaustive expansion.
//!
//! [`JobSpec`]: alloc_locality::JobSpec

pub mod adaptive;
pub mod executor;
pub mod pareto;
pub mod report;
pub mod sweep;

pub use adaptive::{run_adaptive, AdaptiveOptions};
pub use executor::{run_sweep, run_sweep_naive, run_sweep_with, ExecOptions, ExploreError};
pub use pareto::{pareto_front, Objectives};
pub use report::{
    AdaptiveMeta, SweepExec, SweepFrontRow, SweepHeader, SweepPointRow, SweepReport,
    SWEEP_REPORT_SCHEMA, SWEEP_REPORT_VERSION,
};
pub use sweep::{GridSpec, SweepSpec, MAX_SWEEP_POINTS};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepSpec {
        SweepSpec {
            cache_kb: vec![16],
            paging: Some(false),
            ..SweepSpec::over(
                "espresso",
                0.002,
                vec![
                    GridSpec { split_threshold: vec![8, 24], ..GridSpec::baseline("FirstFit") },
                    GridSpec { fast_max: vec![16, 64], ..GridSpec::baseline("QuickFit") },
                    GridSpec { min_shift: vec![4, 6], ..GridSpec::baseline("BSD") },
                ],
            )
        }
    }

    #[test]
    fn sweep_runs_assemble_and_validate() {
        let spec = tiny_sweep();
        let report = run_sweep(&spec, 2, |_, _| {}).expect("sweep runs");
        assert_eq!(report.points.len(), 6);
        assert_eq!(report.header.sweep_id, spec.sweep_id());
        assert_eq!(report.header.families, vec!["FirstFit", "QuickFit", "BSD"]);
        report.validate().expect("fresh report validates");
        assert!(!report.front.front.is_empty(), "some point is undominated");
        // Round trip through the JSONL wire form.
        let text = report.to_jsonl();
        let back = SweepReport::parse(&text).expect("parse");
        assert_eq!(back, report);
        back.validate().expect("parsed report validates");
    }

    #[test]
    fn sweep_points_are_byte_identical_to_direct_runs() {
        // The tentpole contract: a point driven off the shared event
        // trace emits exactly the bytes a direct spec-built run does —
        // after normalize_report zeroes both runs' span wall-times, the
        // one field that is execution telemetry rather than simulation
        // output.
        let spec = tiny_sweep();
        let report = run_sweep(&spec, 2, |_, _| {}).expect("sweep runs");
        for row in &report.points {
            let mut direct =
                row.spec.to_experiment().expect("point builds").report().expect("runs");
            assert_eq!(row.report.result, direct.result, "simulation output diverged");
            assert_eq!(row.report.metrics.counters, direct.metrics.counters);
            assert_eq!(row.report.metrics.histograms, direct.metrics.histograms);
            report::normalize_report(&mut direct);
            assert_eq!(
                row.report.to_jsonl_line(),
                direct.to_jsonl_line(),
                "sweep point {} diverged from its direct run",
                row.allocator
            );
        }
    }

    #[test]
    fn shared_and_naive_executors_agree() {
        let spec = tiny_sweep();
        let shared = run_sweep(&spec, 2, |_, _| {}).expect("shared");
        let naive = run_sweep_naive(&spec, 2, |_, _| {}).expect("naive");
        assert_eq!(shared.to_jsonl(), naive.to_jsonl());
    }

    #[test]
    fn validate_rejects_tampered_reports() {
        let report = run_sweep(&tiny_sweep(), 2, |_, _| {}).expect("sweep runs");

        let mut bad = report.clone();
        bad.header.points += 1;
        assert!(bad.validate().unwrap_err().contains("points"));

        let mut bad = report.clone();
        bad.points[0].point_id = "0000000000000000".into();
        assert!(bad.validate().unwrap_err().contains("content address"));

        let mut bad = report.clone();
        bad.points[0].objectives.instructions += 1;
        assert!(bad.validate().unwrap_err().contains("objectives"));

        let mut bad = report.clone();
        bad.front.front.clear();
        assert!(bad.validate().unwrap_err().contains("Pareto front"));

        let mut bad = report.clone();
        for p in &mut bad.points {
            p.sweep_id = "ffffffffffffffff".into();
        }
        assert!(bad.validate().unwrap_err().contains("sweep_id"));

        let mut bad = report.clone();
        bad.header.stream_hits = 1;
        assert!(bad.validate().unwrap_err().contains("tallies"));

        let mut bad = report.clone();
        bad.header.mode = "genetic".into();
        assert!(bad.validate().unwrap_err().contains("mode"));

        let mut bad = report.clone();
        bad.header.adaptive_evaluated = 3;
        assert!(bad.validate().unwrap_err().contains("adaptive"));
    }

    #[test]
    fn v1_reports_still_parse_and_validate() {
        // A v1 document — no axes, no cache tallies, no mode — must stay
        // readable after the v2 bump: fabricate one by downgrading a
        // fresh report's rows to version 1 and stripping the v2 fields.
        let mut report = run_sweep(&tiny_sweep(), 2, |_, _| {}).expect("sweep runs");
        report.header.version = 1;
        report.header.programs.clear();
        report.header.scales.clear();
        report.header.mode = String::new();
        for p in &mut report.points {
            p.version = 1;
        }
        report.front.version = 1;
        report.validate().expect("v1-shaped report validates");
        let back = SweepReport::parse(&report.to_jsonl()).expect("parse");
        back.validate().expect("round-tripped v1 report validates");
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("alsc-explore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn warm_sweeps_replay_byte_identically() {
        let dir = scratch_dir("warm");
        let spec = tiny_sweep();
        let opts =
            ExecOptions { threads: 2, stream_cache: Some(dir.clone()), stream_cache_bytes: None };
        let cold = run_sweep_with(&spec, &opts, |_, _| {}).expect("cold sweep");
        assert_eq!(cold.header.stream_hits, 0);
        assert_eq!(cold.header.stream_misses, 6);
        cold.validate().expect("cold report validates");
        let warm = run_sweep_with(&spec, &opts, |_, _| {}).expect("warm sweep");
        assert_eq!(warm.header.stream_hits, 6);
        assert_eq!(warm.header.stream_misses, 0);
        // Everything but the cache tallies — every point row and the
        // front — is byte-identical: warm points report the sidecar
        // metrics the cold run froze.
        assert_eq!(cold.points, warm.points);
        assert_eq!(cold.front, warm.front);
        // And an overlapping sweep replays the shared points too.
        let overlap = SweepSpec {
            grids: vec![GridSpec { min_shift: vec![4, 5, 6], ..GridSpec::baseline("BSD") }],
            ..spec.clone()
        };
        let report = run_sweep_with(&overlap, &opts, |_, _| {}).expect("overlapping sweep");
        assert_eq!(report.header.stream_hits, 2);
        assert_eq!(report.header.stream_misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_axis_sweeps_agree_with_the_naive_executor() {
        let spec = SweepSpec {
            programs: vec!["espresso".into(), "make".into()],
            scales: vec![0.002, 0.003],
            ..tiny_sweep()
        };
        let shared = run_sweep(&spec, 2, |_, _| {}).expect("shared");
        let naive = run_sweep_naive(&spec, 2, |_, _| {}).expect("naive");
        assert_eq!(shared.to_jsonl(), naive.to_jsonl());
        assert_eq!(shared.points.len(), 24);
        assert_eq!(shared.header.programs, vec!["espresso".to_string(), "make".to_string()]);
        assert_eq!(shared.header.scales, vec![0.002, 0.003]);
        shared.validate().expect("axis report validates");
    }

    #[test]
    fn full_budget_adaptive_degenerates_to_the_exhaustive_grid() {
        let spec = tiny_sweep();
        let exhaustive = run_sweep(&spec, 2, |_, _| {}).expect("exhaustive");
        let adaptive =
            run_adaptive(&spec, &ExecOptions::threads(2), AdaptiveOptions::default(), |_, _| {})
                .expect("adaptive");
        adaptive.validate().expect("adaptive report validates");
        assert_eq!(adaptive.header.mode, "adaptive");
        assert_eq!(adaptive.header.adaptive_exhaustive, exhaustive.points.len() as u64);
        // With an unlimited budget the active sets grow until the
        // subgrid *is* the grid: same sweep id, byte-identical point
        // rows and front.
        assert_eq!(adaptive.header.sweep_id, exhaustive.header.sweep_id);
        assert_eq!(adaptive.points, exhaustive.points);
        assert_eq!(adaptive.front, exhaustive.front);
    }
}
