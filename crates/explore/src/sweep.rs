//! [`SweepSpec`]: a declarative grid over allocator configurations.
//!
//! A sweep names one workload cell (program, scale, cache geometry —
//! the same optional fields as a [`JobSpec`], with the same defaults)
//! and a list of [`GridSpec`]s, one per allocator family. Each grid
//! lists candidate values for the knobs its family exposes; the cross
//! product of those lists, unioned across grids, is the sweep's point
//! set. Every point is an ordinary [`JobSpec`] — content-addressed by
//! [`JobSpec::job_id`], validated by [`JobSpec::validate`] — so a sweep
//! point run anywhere (the `explore` binary, the serve daemon, a direct
//! `repro` invocation) produces byte-identical results.
//!
//! Like job specs, sweeps are normalized before hashing: knob lists are
//! sorted and deduplicated, workload defaults are filled in, and points
//! that normalize to the same job (for example an explicitly-default
//! knob next to an absent one) collapse to one.

use std::collections::HashSet;
use std::fmt;

use alloc_locality::job_spec::{program_by_label, SERVABLE_ALLOCATORS};
use alloc_locality::{AllocConfig, JobSpec, SpecError};
use serde::{Deserialize, Serialize};

/// Upper bound on the number of points one sweep may expand to
/// (counted before deduplication, so the bound is spelling-independent).
pub const MAX_SWEEP_POINTS: usize = 4096;

/// Candidate knob values for one allocator family.
///
/// An empty (or omitted) list leaves that knob at the paper's default —
/// it contributes a single "unset" slot to the cross product, not zero
/// points. A grid with every list empty is the family's paper
/// configuration as a single point, which is how untunable baselines
/// ("GNU local", "BestFit", "Buddy") join a sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GridSpec {
    /// Allocator label, as [`JobSpec::allocator`].
    pub allocator: String,
    /// Candidate split thresholds (FirstFit, GNU G++).
    #[serde(default)]
    pub split_threshold: Vec<u32>,
    /// Candidate coalescing settings (FirstFit, GNU G++).
    #[serde(default)]
    pub coalesce: Vec<bool>,
    /// Candidate roving-pointer settings (FirstFit).
    #[serde(default)]
    pub roving: Vec<bool>,
    /// Candidate fast-list payload bounds (QuickFit).
    #[serde(default)]
    pub fast_max: Vec<u32>,
    /// Candidate minimum rounding-class shifts (BSD).
    #[serde(default)]
    pub min_shift: Vec<u32>,
    /// Candidate working-set clocks (Predictive).
    #[serde(default)]
    pub short_age: Vec<u32>,
}

impl GridSpec {
    /// A grid holding the family's single paper configuration.
    pub fn baseline(allocator: &str) -> GridSpec {
        GridSpec { allocator: allocator.to_string(), ..GridSpec::default() }
    }

    /// Number of points this grid expands to (before deduplication).
    pub fn point_count(&self) -> usize {
        let axis = |len: usize| len.max(1);
        axis(self.split_threshold.len())
            * axis(self.coalesce.len())
            * axis(self.roving.len())
            * axis(self.fast_max.len())
            * axis(self.min_shift.len())
            * axis(self.short_age.len())
    }

    /// The grid with every knob list sorted and deduplicated, so
    /// equivalent spellings serialize — and hash — identically.
    pub fn normalized(&self) -> GridSpec {
        fn canon<T: Ord + Copy>(vals: &[T]) -> Vec<T> {
            let mut v = vals.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        }
        GridSpec {
            allocator: self.allocator.clone(),
            split_threshold: canon(&self.split_threshold),
            coalesce: canon(&self.coalesce),
            roving: canon(&self.roving),
            fast_max: canon(&self.fast_max),
            min_shift: canon(&self.min_shift),
            short_age: canon(&self.short_age),
        }
    }

    /// The cross product of the knob lists, in knob-declaration order
    /// (an empty list contributes one unset slot). `None` entries are
    /// all-default combinations.
    fn configs(&self) -> Vec<Option<AllocConfig>> {
        fn axis<T: Copy>(vals: &[T]) -> Vec<Option<T>> {
            if vals.is_empty() {
                vec![None]
            } else {
                vals.iter().copied().map(Some).collect()
            }
        }
        let mut out = Vec::with_capacity(self.point_count());
        for &split_threshold in &axis(&self.split_threshold) {
            for &coalesce in &axis(&self.coalesce) {
                for &roving in &axis(&self.roving) {
                    for &fast_max in &axis(&self.fast_max) {
                        for &min_shift in &axis(&self.min_shift) {
                            for &short_age in &axis(&self.short_age) {
                                let cfg = AllocConfig {
                                    split_threshold,
                                    coalesce,
                                    roving,
                                    fast_max,
                                    min_shift,
                                    short_age,
                                };
                                out.push(if cfg.is_empty() { None } else { Some(cfg) });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// A parameter sweep over allocator configurations: one workload cell
/// shared by every point, plus per-family knob grids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Program label, as [`JobSpec::program`].
    pub program: String,
    /// Workload scale; 0/omitted means the engine default.
    #[serde(default)]
    pub scale: f64,
    /// Cache sizes in KB; empty/omitted means the paper's sweep.
    #[serde(default)]
    pub cache_kb: Vec<u32>,
    /// Cache block size in bytes; 0/omitted means the paper's 32.
    #[serde(default)]
    pub block: u32,
    /// Whether to simulate paging; omitted means on.
    #[serde(default)]
    pub paging: Option<bool>,
    /// One grid per allocator family to explore.
    pub grids: Vec<GridSpec>,
}

impl SweepSpec {
    /// A sweep over the given grids with every workload option defaulted.
    pub fn over(program: &str, scale: f64, grids: Vec<GridSpec>) -> SweepSpec {
        SweepSpec {
            program: program.to_string(),
            scale,
            cache_kb: Vec::new(),
            block: 0,
            paging: None,
            grids,
        }
    }

    /// The workload cell shared by every point, as a [`JobSpec`] with
    /// the given allocator and no tuning.
    fn cell(&self, allocator: &str) -> JobSpec {
        JobSpec {
            program: self.program.clone(),
            allocator: allocator.to_string(),
            scale: self.scale,
            cache_kb: self.cache_kb.clone(),
            block: self.block,
            paging: self.paging,
            alloc_config: None,
        }
    }

    /// The spec with workload defaults filled in and every grid's knob
    /// lists canonicalized, so equivalent sweeps hash identically.
    pub fn normalized(&self) -> SweepSpec {
        let cell = self.cell("FirstFit").normalized();
        SweepSpec {
            program: cell.program,
            scale: cell.scale,
            cache_kb: cell.cache_kb,
            block: cell.block,
            paging: cell.paging,
            grids: self.grids.iter().map(GridSpec::normalized).collect(),
        }
    }

    /// Distinct allocator families, in grid order.
    pub fn families(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        self.grids
            .iter()
            .filter(|g| seen.insert(g.allocator.clone()))
            .map(|g| g.allocator.clone())
            .collect()
    }

    /// Expands the sweep into its point set: deterministic order (grids
    /// in declaration order, knobs in field order), normalized, and
    /// deduplicated by [`JobSpec::job_id`].
    pub fn points(&self) -> Vec<JobSpec> {
        let n = self.normalized();
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for grid in &n.grids {
            for cfg in grid.configs() {
                let mut point = n.cell(&grid.allocator);
                point.alloc_config = cfg;
                let point = point.normalized();
                if seen.insert(point.job_id()) {
                    out.push(point);
                }
            }
        }
        out
    }

    /// Checks the workload cell, every grid, and every expanded point.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first rejected field.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.grids.is_empty() {
            return Err(SpecError::new("sweep declares no grids"));
        }
        if program_by_label(&self.normalized().program).is_none() {
            return Err(SpecError::new(format!("unknown program {:?}", self.program)));
        }
        let mut total = 0usize;
        for grid in &self.grids {
            if !SERVABLE_ALLOCATORS.contains(&grid.allocator.as_str()) {
                return Err(SpecError::new(format!(
                    "unknown allocator {:?} in grid",
                    grid.allocator
                )));
            }
            // Custom profiles itself on the workload *source*, which
            // differs between spec-generated and replayed streams, so it
            // cannot keep the sweep's bit-identity contract.
            if grid.allocator == "Custom" {
                return Err(SpecError::new(
                    "allocator \"Custom\" cannot be swept: its size profile depends on \
                     the workload source",
                ));
            }
            total = total.saturating_add(grid.point_count());
            if total > MAX_SWEEP_POINTS {
                return Err(SpecError::new(format!(
                    "sweep expands to more than {MAX_SWEEP_POINTS} points"
                )));
            }
        }
        for point in self.points() {
            point.validate().map_err(|e| {
                SpecError::new(format!("point {}/{}: {e}", point.program, point.allocator))
            })?;
        }
        Ok(())
    }

    /// The canonical single-line JSON of the normalized sweep — the
    /// bytes [`SweepSpec::sweep_id`] covers.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this in-memory struct
    /// would be a serializer bug.
    pub fn canonical_line(&self) -> String {
        serde_json::to_string(&self.normalized()).expect("serialize sweep spec")
    }

    /// Content-addressed sweep id: FNV-1a over a domain tag plus
    /// [`SweepSpec::canonical_line`], printed as 16 hex digits. The tag
    /// keeps sweep ids out of the job-id namespace.
    pub fn sweep_id(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in b"sweep\n".iter().copied().chain(self.canonical_line().bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }
}

impl fmt::Display for SweepSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} over [{}]",
            self.program,
            self.normalized().scale,
            self.families().join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SweepSpec {
        SweepSpec {
            cache_kb: vec![16],
            ..SweepSpec::over(
                "espresso",
                0.002,
                vec![
                    GridSpec {
                        split_threshold: vec![8, 24],
                        coalesce: vec![true, false],
                        ..GridSpec::baseline("FirstFit")
                    },
                    GridSpec { fast_max: vec![16, 32, 64], ..GridSpec::baseline("QuickFit") },
                    GridSpec { min_shift: vec![4, 6], ..GridSpec::baseline("BSD") },
                ],
            )
        }
    }

    #[test]
    fn expansion_is_the_cross_product_union() {
        let spec = demo();
        spec.validate().expect("demo sweep is valid");
        let points = spec.points();
        // 2*2 + 3 + 2 points declared; all normalize to distinct jobs.
        assert_eq!(points.len(), 9);
        let ids: HashSet<String> = points.iter().map(JobSpec::job_id).collect();
        assert_eq!(ids.len(), 9);
        // The all-default combinations collapse to untuned specs.
        assert!(points.iter().any(|p| p.allocator == "QuickFit" && p.alloc_config.is_none()));
        assert_eq!(spec.families(), vec!["FirstFit", "QuickFit", "BSD"]);
    }

    #[test]
    fn equivalent_spellings_share_a_sweep_id() {
        let spec = demo();
        let mut shuffled = spec.clone();
        shuffled.grids[0].split_threshold = vec![24, 8, 24];
        shuffled.grids[1].fast_max = vec![64, 16, 32];
        assert_eq!(spec.sweep_id(), shuffled.sweep_id());
        assert_eq!(spec.points(), shuffled.points());
        let mut other = spec.clone();
        other.grids[2].min_shift = vec![4, 5];
        assert_ne!(spec.sweep_id(), other.sweep_id());
    }

    #[test]
    fn default_knobs_dedupe_against_the_baseline_point() {
        // split_threshold 24 is FirstFit's default, so {24} ∪ {unset}
        // collapses: the grid declares 2 points but only one survives.
        let spec = SweepSpec {
            cache_kb: vec![16],
            ..SweepSpec::over(
                "make",
                0.002,
                vec![
                    GridSpec { split_threshold: vec![24], ..GridSpec::baseline("FirstFit") },
                    GridSpec::baseline("FirstFit"),
                ],
            )
        };
        assert_eq!(spec.points().len(), 1);
        assert!(spec.points()[0].alloc_config.is_none());
    }

    #[test]
    fn bad_sweeps_are_rejected_with_reasons() {
        let bad = |f: fn(&mut SweepSpec)| {
            let mut s = demo();
            f(&mut s);
            s.validate().unwrap_err().to_string()
        };
        assert!(bad(|s| s.grids.clear()).contains("no grids"));
        assert!(bad(|s| s.program = "tetris".into()).contains("unknown program"));
        assert!(bad(|s| s.grids[0].allocator = "jemalloc".into()).contains("unknown allocator"));
        assert!(bad(|s| s.grids[0].allocator = "Custom".into()).contains("Custom"));
        assert!(bad(|s| s.grids[1].fast_max = vec![30]).contains("multiple of 4"));
        assert!(bad(|s| s.grids[0].fast_max = vec![32]).contains("does not apply"));
        assert!(bad(|s| s.grids[2].min_shift = (0..5000).map(|i| i % 10 + 3).collect())
            .contains("points"));
    }

    #[test]
    fn sweep_spec_round_trips_through_json() {
        let spec = demo();
        let line = spec.canonical_line();
        let back: SweepSpec = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, spec.normalized());
        assert_eq!(back.sweep_id(), spec.sweep_id());
        // Omitted knob lists parse as empty.
        let terse = r#"{"program":"gawk","grids":[{"allocator":"BSD","min_shift":[4,5]}]}"#;
        let spec: SweepSpec = serde_json::from_str(terse).expect("parse terse");
        spec.validate().expect("valid");
        assert_eq!(spec.points().len(), 2);
    }
}
