//! [`SweepSpec`]: a declarative grid over allocator configurations.
//!
//! A sweep names one workload cell (program, scale, cache geometry —
//! the same optional fields as a [`JobSpec`], with the same defaults)
//! and a list of [`GridSpec`]s, one per allocator family. Each grid
//! lists candidate values for the knobs its family exposes; the cross
//! product of those lists, unioned across grids, is the sweep's point
//! set. Every point is an ordinary [`JobSpec`] — content-addressed by
//! [`JobSpec::job_id`], validated by [`JobSpec::validate`] — so a sweep
//! point run anywhere (the `explore` binary, the serve daemon, a direct
//! `repro` invocation) produces byte-identical results.
//!
//! Like job specs, sweeps are normalized before hashing: knob lists are
//! sorted and deduplicated, workload defaults are filled in, and points
//! that normalize to the same job (for example an explicitly-default
//! knob next to an absent one) collapse to one.

use std::collections::HashSet;
use std::fmt;

use alloc_locality::job_spec::{program_by_label, SERVABLE_ALLOCATORS};
use alloc_locality::{AllocConfig, JobSpec, SpecError};
use serde::{Deserialize, Serialize};

/// Upper bound on the number of points one sweep may expand to
/// (counted before deduplication, so the bound is spelling-independent).
pub const MAX_SWEEP_POINTS: usize = 4096;

/// Candidate knob values for one allocator family.
///
/// An empty (or omitted) list leaves that knob at the paper's default —
/// it contributes a single "unset" slot to the cross product, not zero
/// points. A grid with every list empty is the family's paper
/// configuration as a single point, which is how untunable baselines
/// ("GNU local", "BestFit", "Buddy") join a sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GridSpec {
    /// Allocator label, as [`JobSpec::allocator`].
    pub allocator: String,
    /// Candidate split thresholds (FirstFit, GNU G++).
    #[serde(default)]
    pub split_threshold: Vec<u32>,
    /// Candidate coalescing settings (FirstFit, GNU G++).
    #[serde(default)]
    pub coalesce: Vec<bool>,
    /// Candidate roving-pointer settings (FirstFit).
    #[serde(default)]
    pub roving: Vec<bool>,
    /// Candidate fast-list payload bounds (QuickFit).
    #[serde(default)]
    pub fast_max: Vec<u32>,
    /// Candidate minimum rounding-class shifts (BSD).
    #[serde(default)]
    pub min_shift: Vec<u32>,
    /// Candidate working-set clocks (Predictive).
    #[serde(default)]
    pub short_age: Vec<u32>,
}

impl GridSpec {
    /// A grid holding the family's single paper configuration.
    pub fn baseline(allocator: &str) -> GridSpec {
        GridSpec { allocator: allocator.to_string(), ..GridSpec::default() }
    }

    /// Number of points this grid expands to (before deduplication).
    pub fn point_count(&self) -> usize {
        let axis = |len: usize| len.max(1);
        axis(self.split_threshold.len())
            * axis(self.coalesce.len())
            * axis(self.roving.len())
            * axis(self.fast_max.len())
            * axis(self.min_shift.len())
            * axis(self.short_age.len())
    }

    /// The grid with every knob list sorted and deduplicated, so
    /// equivalent spellings serialize — and hash — identically.
    pub fn normalized(&self) -> GridSpec {
        fn canon<T: Ord + Copy>(vals: &[T]) -> Vec<T> {
            let mut v = vals.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        }
        GridSpec {
            allocator: self.allocator.clone(),
            split_threshold: canon(&self.split_threshold),
            coalesce: canon(&self.coalesce),
            roving: canon(&self.roving),
            fast_max: canon(&self.fast_max),
            min_shift: canon(&self.min_shift),
            short_age: canon(&self.short_age),
        }
    }

    /// The cross product of the knob lists, in knob-declaration order
    /// (an empty list contributes one unset slot). `None` entries are
    /// all-default combinations.
    fn configs(&self) -> Vec<Option<AllocConfig>> {
        fn axis<T: Copy>(vals: &[T]) -> Vec<Option<T>> {
            if vals.is_empty() {
                vec![None]
            } else {
                vals.iter().copied().map(Some).collect()
            }
        }
        let mut out = Vec::with_capacity(self.point_count());
        for &split_threshold in &axis(&self.split_threshold) {
            for &coalesce in &axis(&self.coalesce) {
                for &roving in &axis(&self.roving) {
                    for &fast_max in &axis(&self.fast_max) {
                        for &min_shift in &axis(&self.min_shift) {
                            for &short_age in &axis(&self.short_age) {
                                let cfg = AllocConfig {
                                    split_threshold,
                                    coalesce,
                                    roving,
                                    fast_max,
                                    min_shift,
                                    short_age,
                                };
                                out.push(if cfg.is_empty() { None } else { Some(cfg) });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// A parameter sweep over allocator configurations: a workload cell —
/// optionally crossed with program and scale axes — plus per-family
/// knob grids.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Program label, as [`JobSpec::program`].
    pub program: String,
    /// Workload scale; 0/omitted means the engine default.
    pub scale: f64,
    /// Program axis: when non-empty, the sweep crosses its grids over
    /// *these* programs and [`SweepSpec::program`] is ignored (it
    /// normalizes to the axis's first value). Empty means the single
    /// scalar program.
    pub programs: Vec<String>,
    /// Scale axis: when non-empty, the sweep crosses its grids over
    /// these scales and [`SweepSpec::scale`] is ignored (it normalizes
    /// to the axis's first value). Empty means the single scalar scale.
    pub scales: Vec<f64>,
    /// Cache sizes in KB; empty/omitted means the paper's sweep.
    pub cache_kb: Vec<u32>,
    /// Cache block size in bytes; 0/omitted means the paper's 32.
    pub block: u32,
    /// Whether to simulate paging; omitted means on.
    pub paging: Option<bool>,
    /// One grid per allocator family to explore.
    pub grids: Vec<GridSpec>,
}

// `SweepSpec` serializes by hand for the same reason `JobSpec` does:
// the derive emits every field, and permanent `"programs":[]` /
// `"scales":[]` entries in the canonical line would silently renumber
// every pre-existing sweep id. Omitting the axes when empty keeps
// axis-free sweeps byte-stable across this addition.
impl Serialize for SweepSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("program".to_string(), self.program.to_value()),
            ("scale".to_string(), self.scale.to_value()),
        ];
        if !self.programs.is_empty() {
            fields.push(("programs".to_string(), self.programs.to_value()));
        }
        if !self.scales.is_empty() {
            fields.push(("scales".to_string(), self.scales.to_value()));
        }
        fields.push(("cache_kb".to_string(), self.cache_kb.to_value()));
        fields.push(("block".to_string(), self.block.to_value()));
        fields.push(("paging".to_string(), self.paging.to_value()));
        fields.push(("grids".to_string(), self.grids.to_value()));
        serde::Value::Object(fields)
    }
}

impl Deserialize for SweepSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fields =
            v.as_object().ok_or_else(|| serde::Error::custom("SweepSpec: expected an object"))?;
        fn required<T: Deserialize>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::Error> {
            match serde::__find_field(fields, name) {
                Some(v) => T::from_value(v),
                None => Err(serde::Error::custom(format!("SweepSpec: missing field `{name}`"))),
            }
        }
        fn defaulted<T: Deserialize + Default>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::Error> {
            match serde::__find_field(fields, name) {
                Some(v) => T::from_value(v),
                None => Ok(T::default()),
            }
        }
        Ok(SweepSpec {
            program: required(fields, "program")?,
            scale: defaulted(fields, "scale")?,
            programs: defaulted(fields, "programs")?,
            scales: defaulted(fields, "scales")?,
            cache_kb: defaulted(fields, "cache_kb")?,
            block: defaulted(fields, "block")?,
            paging: defaulted(fields, "paging")?,
            grids: required(fields, "grids")?,
        })
    }
}

impl SweepSpec {
    /// A sweep over the given grids with every workload option defaulted.
    pub fn over(program: &str, scale: f64, grids: Vec<GridSpec>) -> SweepSpec {
        SweepSpec {
            program: program.to_string(),
            scale,
            programs: Vec::new(),
            scales: Vec::new(),
            cache_kb: Vec::new(),
            block: 0,
            paging: None,
            grids,
        }
    }

    /// One workload cell of the sweep, as a [`JobSpec`] with the given
    /// allocator and no tuning.
    fn cell_at(&self, program: &str, scale: f64, allocator: &str) -> JobSpec {
        JobSpec {
            program: program.to_string(),
            allocator: allocator.to_string(),
            scale,
            cache_kb: self.cache_kb.clone(),
            block: self.block,
            paging: self.paging,
            alloc_config: None,
        }
    }

    /// The effective program axis: the `programs` list when non-empty,
    /// otherwise the single scalar program.
    pub fn programs_axis(&self) -> Vec<String> {
        if self.programs.is_empty() {
            vec![self.program.clone()]
        } else {
            self.programs.clone()
        }
    }

    /// The effective scale axis: the `scales` list when non-empty,
    /// otherwise the single scalar scale.
    pub fn scales_axis(&self) -> Vec<f64> {
        if self.scales.is_empty() {
            vec![self.scale]
        } else {
            self.scales.clone()
        }
    }

    /// The spec with workload defaults filled in, every grid's knob
    /// lists canonicalized, and the workload axes sorted, deduplicated,
    /// and collapsed (a one-value axis is the same sweep as its scalar
    /// spelling, so it normalizes *to* the scalar; a multi-value axis
    /// pins the scalar to its first value), so equivalent sweeps hash
    /// identically.
    pub fn normalized(&self) -> SweepSpec {
        let fill = |scale: f64| {
            JobSpec {
                cache_kb: self.cache_kb.clone(),
                block: self.block,
                paging: self.paging,
                ..JobSpec::cell(&self.program, "FirstFit", scale)
            }
            .normalized()
        };
        let mut programs = self.programs_axis();
        programs.sort();
        programs.dedup();
        let mut scales: Vec<f64> = self.scales_axis().iter().map(|&s| fill(s).scale).collect();
        scales.sort_by(f64::total_cmp);
        scales.dedup_by(|a, b| a.to_bits() == b.to_bits());
        let cell = fill(self.scale);
        SweepSpec {
            program: programs[0].clone(),
            scale: scales[0],
            programs: if programs.len() > 1 { programs } else { Vec::new() },
            scales: if scales.len() > 1 { scales } else { Vec::new() },
            cache_kb: cell.cache_kb,
            block: cell.block,
            paging: cell.paging,
            grids: self.grids.iter().map(GridSpec::normalized).collect(),
        }
    }

    /// Distinct allocator families, in grid order.
    pub fn families(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        self.grids
            .iter()
            .filter(|g| seen.insert(g.allocator.clone()))
            .map(|g| g.allocator.clone())
            .collect()
    }

    /// Expands the sweep into its point set: deterministic order
    /// (programs, then scales, then grids in declaration order, knobs in
    /// field order), normalized, and deduplicated by
    /// [`JobSpec::job_id`].
    pub fn points(&self) -> Vec<JobSpec> {
        let n = self.normalized();
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for program in n.programs_axis() {
            for &scale in &n.scales_axis() {
                for grid in &n.grids {
                    for cfg in grid.configs() {
                        let mut point = n.cell_at(&program, scale, &grid.allocator);
                        point.alloc_config = cfg;
                        let point = point.normalized();
                        if seen.insert(point.job_id()) {
                            out.push(point);
                        }
                    }
                }
            }
        }
        out
    }

    /// Checks the workload axes, every grid, and every expanded point.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first rejected field.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.grids.is_empty() {
            return Err(SpecError::new("sweep declares no grids"));
        }
        for program in self.programs_axis() {
            if program_by_label(&program).is_none() {
                return Err(SpecError::new(format!("unknown program {program:?}")));
            }
        }
        let cells =
            self.programs_axis().len().saturating_mul(self.scales_axis().len().max(1)).max(1);
        let mut total = 0usize;
        for grid in &self.grids {
            if !SERVABLE_ALLOCATORS.contains(&grid.allocator.as_str()) {
                return Err(SpecError::new(format!(
                    "unknown allocator {:?} in grid",
                    grid.allocator
                )));
            }
            // Custom profiles itself on the workload *source*, which
            // differs between spec-generated and replayed streams, so it
            // cannot keep the sweep's bit-identity contract.
            if grid.allocator == "Custom" {
                return Err(SpecError::new(
                    "allocator \"Custom\" cannot be swept: its size profile depends on \
                     the workload source",
                ));
            }
            total = total.saturating_add(grid.point_count().saturating_mul(cells));
            if total > MAX_SWEEP_POINTS {
                return Err(SpecError::new(format!(
                    "sweep expands to more than {MAX_SWEEP_POINTS} points"
                )));
            }
        }
        for point in self.points() {
            point.validate().map_err(|e| {
                SpecError::new(format!("point {}/{}: {e}", point.program, point.allocator))
            })?;
        }
        Ok(())
    }

    /// The canonical single-line JSON of the normalized sweep — the
    /// bytes [`SweepSpec::sweep_id`] covers.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this in-memory struct
    /// would be a serializer bug.
    pub fn canonical_line(&self) -> String {
        serde_json::to_string(&self.normalized()).expect("serialize sweep spec")
    }

    /// Content-addressed sweep id: FNV-1a over a domain tag plus
    /// [`SweepSpec::canonical_line`], printed as 16 hex digits. The tag
    /// keeps sweep ids out of the job-id namespace.
    pub fn sweep_id(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in b"sweep\n".iter().copied().chain(self.canonical_line().bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }
}

impl fmt::Display for SweepSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.normalized();
        let scales = n.scales_axis().iter().map(f64::to_string).collect::<Vec<_>>().join(",");
        write!(
            f,
            "{} @ {} over [{}]",
            n.programs_axis().join(","),
            scales,
            self.families().join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SweepSpec {
        SweepSpec {
            cache_kb: vec![16],
            ..SweepSpec::over(
                "espresso",
                0.002,
                vec![
                    GridSpec {
                        split_threshold: vec![8, 24],
                        coalesce: vec![true, false],
                        ..GridSpec::baseline("FirstFit")
                    },
                    GridSpec { fast_max: vec![16, 32, 64], ..GridSpec::baseline("QuickFit") },
                    GridSpec { min_shift: vec![4, 6], ..GridSpec::baseline("BSD") },
                ],
            )
        }
    }

    #[test]
    fn expansion_is_the_cross_product_union() {
        let spec = demo();
        spec.validate().expect("demo sweep is valid");
        let points = spec.points();
        // 2*2 + 3 + 2 points declared; all normalize to distinct jobs.
        assert_eq!(points.len(), 9);
        let ids: HashSet<String> = points.iter().map(JobSpec::job_id).collect();
        assert_eq!(ids.len(), 9);
        // The all-default combinations collapse to untuned specs.
        assert!(points.iter().any(|p| p.allocator == "QuickFit" && p.alloc_config.is_none()));
        assert_eq!(spec.families(), vec!["FirstFit", "QuickFit", "BSD"]);
    }

    #[test]
    fn equivalent_spellings_share_a_sweep_id() {
        let spec = demo();
        let mut shuffled = spec.clone();
        shuffled.grids[0].split_threshold = vec![24, 8, 24];
        shuffled.grids[1].fast_max = vec![64, 16, 32];
        assert_eq!(spec.sweep_id(), shuffled.sweep_id());
        assert_eq!(spec.points(), shuffled.points());
        let mut other = spec.clone();
        other.grids[2].min_shift = vec![4, 5];
        assert_ne!(spec.sweep_id(), other.sweep_id());
    }

    #[test]
    fn default_knobs_dedupe_against_the_baseline_point() {
        // split_threshold 24 is FirstFit's default, so {24} ∪ {unset}
        // collapses: the grid declares 2 points but only one survives.
        let spec = SweepSpec {
            cache_kb: vec![16],
            ..SweepSpec::over(
                "make",
                0.002,
                vec![
                    GridSpec { split_threshold: vec![24], ..GridSpec::baseline("FirstFit") },
                    GridSpec::baseline("FirstFit"),
                ],
            )
        };
        assert_eq!(spec.points().len(), 1);
        assert!(spec.points()[0].alloc_config.is_none());
    }

    #[test]
    fn bad_sweeps_are_rejected_with_reasons() {
        let bad = |f: fn(&mut SweepSpec)| {
            let mut s = demo();
            f(&mut s);
            s.validate().unwrap_err().to_string()
        };
        assert!(bad(|s| s.grids.clear()).contains("no grids"));
        assert!(bad(|s| s.program = "tetris".into()).contains("unknown program"));
        assert!(bad(|s| s.grids[0].allocator = "jemalloc".into()).contains("unknown allocator"));
        assert!(bad(|s| s.grids[0].allocator = "Custom".into()).contains("Custom"));
        assert!(bad(|s| s.grids[1].fast_max = vec![30]).contains("multiple of 4"));
        assert!(bad(|s| s.grids[0].fast_max = vec![32]).contains("does not apply"));
        assert!(bad(|s| s.grids[2].min_shift = (0..5000).map(|i| i % 10 + 3).collect())
            .contains("points"));
    }

    #[test]
    fn sweep_spec_round_trips_through_json() {
        let spec = demo();
        let line = spec.canonical_line();
        let back: SweepSpec = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, spec.normalized());
        assert_eq!(back.sweep_id(), spec.sweep_id());
        // Omitted knob lists parse as empty.
        let terse = r#"{"program":"gawk","grids":[{"allocator":"BSD","min_shift":[4,5]}]}"#;
        let spec: SweepSpec = serde_json::from_str(terse).expect("parse terse");
        spec.validate().expect("valid");
        assert_eq!(spec.points().len(), 2);
    }

    #[test]
    fn axis_free_sweeps_never_serialize_axis_fields() {
        // The sweep-id namespace from before the axes existed must be
        // preserved: an axis-free spec's canonical line carries no
        // `programs`/`scales` keys at all.
        let line = demo().canonical_line();
        assert!(!line.contains("\"programs\""));
        assert!(!line.contains("\"scales\""));
    }

    #[test]
    fn workload_axes_cross_with_the_grids() {
        let spec = SweepSpec {
            programs: vec!["espresso".into(), "make".into()],
            scales: vec![0.002, 0.004],
            ..demo()
        };
        spec.validate().expect("axis sweep is valid");
        // 9 allocator points per (program, scale) cell, 4 cells.
        assert_eq!(spec.points().len(), 36);
        // Points iterate programs outermost, scales next.
        let points = spec.points();
        assert!(points[..9].iter().all(|p| p.program == "espresso" && p.scale == 0.002));
        assert!(points[9..18].iter().all(|p| p.program == "espresso" && p.scale == 0.004));
        assert!(points[18..].iter().all(|p| p.program == "make"));
    }

    #[test]
    fn singleton_axes_normalize_to_the_scalar_spelling() {
        let scalar = demo();
        let spelled =
            SweepSpec { programs: vec!["espresso".into()], scales: vec![0.002], ..demo() };
        assert_eq!(spelled.normalized(), scalar.normalized());
        assert_eq!(spelled.sweep_id(), scalar.sweep_id());
        // Multi-value axes pin the scalars to the first axis value, so
        // the scalar fields cannot smuggle in a distinct spelling.
        let a = SweepSpec {
            program: "make".into(),
            programs: vec!["make".into(), "espresso".into()],
            ..demo()
        };
        let b = SweepSpec {
            program: "espresso".into(),
            programs: vec!["espresso".into(), "make".into(), "make".into()],
            ..demo()
        };
        assert_eq!(a.sweep_id(), b.sweep_id());
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn axis_sweeps_validate_and_cap_like_scalar_ones() {
        let mut spec = SweepSpec { programs: vec!["espresso".into(), "tetris".into()], ..demo() };
        assert!(spec.validate().unwrap_err().to_string().contains("unknown program"));
        spec.programs = vec!["espresso".into(), "make".into(), "gawk".into()];
        // 9 declared grid points × 3 programs × 171 scales > 4096.
        spec.scales = (1..=171).map(|i| 0.001 * f64::from(i)).collect();
        assert!(spec.validate().unwrap_err().to_string().contains("points"));
    }

    #[test]
    fn axis_sweeps_round_trip_through_json() {
        let spec = SweepSpec {
            programs: vec!["make".into(), "espresso".into()],
            scales: vec![0.004, 0.002],
            ..demo()
        };
        let back: SweepSpec = serde_json::from_str(&spec.canonical_line()).expect("parse");
        assert_eq!(back, spec.normalized());
        assert_eq!(back.sweep_id(), spec.sweep_id());
        assert_eq!(back.programs, vec!["espresso".to_string(), "make".to_string()]);
        assert_eq!(back.scales, vec![0.002, 0.004]);
    }
}
