//! Adaptive design-space refinement: reach the exhaustive grid's Pareto
//! front while evaluating a fraction of its points.
//!
//! "Simulation of High-Performance Memory Allocators" (Risco-Martín et
//! al.) observes that guided search over an allocator parameter space
//! converges with far fewer evaluations than an exhaustive grid. This
//! module applies the idea to a [`SweepSpec`]: start from a *coarse*
//! subgrid (the endpoints and midpoint of every numeric knob list),
//! evaluate it, and then repeatedly bisect the numeric intervals
//! adjacent to the current Pareto front — the front is where trade-offs
//! live, so that is where resolution pays. When a round of
//! front-directed bisection discovers nothing new, one exploration
//! round bisects *every* remaining interval (a front can sit in an
//! unsampled valley); only when that too adds nothing — every interval
//! dense, or the point budget exhausted — has the refinement converged.
//!
//! Everything is deterministic: the active subgrid is a set of indices
//! into the normalized spec's sorted knob lists, grown in expansion
//! order with integer midpoints, so the same spec, budget, and
//! iteration cap always evaluate the same points in the same order.
//! Each round's subgrid is itself an ordinary [`SweepSpec`] (the same
//! grids with the knob lists filtered to the active values), so the
//! final report is content-addressed exactly like a hand-written sweep
//! of those points — and with an unlimited budget the active sets grow
//! until the subgrid *is* the exhaustive grid, making full-budget
//! refinement degenerate to plain expansion (a property test holds the
//! two reports' point rows byte-identical).

use std::collections::{BTreeSet, HashMap};

use alloc_locality::{AllocConfig, RunReport, RunResult};

use crate::executor::{build_jobs, ExecOptions, ExploreError};
use crate::pareto::{pareto_front, Objectives};
use crate::report::{AdaptiveMeta, SweepExec, SweepReport};
use crate::sweep::{GridSpec, SweepSpec};

/// How long an adaptive refinement may run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveOptions {
    /// Ceiling on evaluated points; 0 means unlimited. The coarse seed
    /// round is always evaluated in full — the budget bounds growth, so
    /// an over-tight budget degrades to the seed grid, never to an
    /// error.
    pub budget: usize,
    /// Ceiling on refinement rounds (the seed round included); 0 means
    /// the default of 32.
    pub iterations: usize,
}

impl AdaptiveOptions {
    fn max_iterations(&self) -> usize {
        if self.iterations == 0 {
            32
        } else {
            self.iterations
        }
    }
}

/// One of the four numeric knob axes bisection applies to, described by
/// accessors so the refinement loop can treat them uniformly. The two
/// boolean axes (`coalesce`, `roving`) have no intervals to bisect and
/// stay at full resolution from the seed round on.
struct NumAxis {
    list: fn(&GridSpec) -> &Vec<u32>,
    pick: fn(&mut GridSpec) -> &mut Vec<u32>,
    knob: fn(&AllocConfig) -> Option<u32>,
    set: fn(&mut AllocConfig, u32),
}

static NUM_AXES: [NumAxis; 4] = [
    NumAxis {
        list: |g| &g.split_threshold,
        pick: |g| &mut g.split_threshold,
        knob: |c| c.split_threshold,
        set: |c, v| c.split_threshold = Some(v),
    },
    NumAxis {
        list: |g| &g.fast_max,
        pick: |g| &mut g.fast_max,
        knob: |c| c.fast_max,
        set: |c, v| c.fast_max = Some(v),
    },
    NumAxis {
        list: |g| &g.min_shift,
        pick: |g| &mut g.min_shift,
        knob: |c| c.min_shift,
        set: |c, v| c.min_shift = Some(v),
    },
    NumAxis {
        list: |g| &g.short_age,
        pick: |g| &mut g.short_age,
        knob: |c| c.short_age,
        set: |c, v| c.short_age = Some(v),
    },
];

/// Per-grid active index sets, one per numeric axis, indexing into the
/// normalized exhaustive spec's sorted knob lists.
type Active = Vec<[BTreeSet<usize>; 4]>;

/// The coarse seed: endpoints plus midpoint of every numeric list
/// (which is the whole list when it has at most three values).
fn seed_active(grids: &[GridSpec]) -> Active {
    grids
        .iter()
        .map(|grid| {
            std::array::from_fn(|axis| {
                let len = (NUM_AXES[axis].list)(grid).len();
                match len {
                    0 => BTreeSet::new(),
                    _ => BTreeSet::from([0, (len - 1) / 2, len - 1]),
                }
            })
        })
        .collect()
}

/// The subgrid spec the active sets currently describe.
fn derived_spec(full: &SweepSpec, active: &Active) -> SweepSpec {
    let mut spec = full.clone();
    for (grid, sets) in spec.grids.iter_mut().zip(active) {
        for (axis, set) in NUM_AXES.iter().zip(sets) {
            let full_list = (axis.list)(grid).clone();
            *(axis.pick)(grid) = set.iter().map(|&i| full_list[i]).collect();
        }
    }
    spec
}

/// The index of a front point's value on one grid's numeric axis. A
/// `None` knob means the point's config dropped the family default
/// during normalization, so the default's own position is the answer;
/// `None` overall means the point did not come from this grid's axis.
fn value_index(list: &[u32], knob: Option<u32>, allocator: &str, axis: &NumAxis) -> Option<usize> {
    match knob {
        Some(v) => list.iter().position(|&x| x == v),
        None => list.iter().position(|&x| {
            let mut cfg = AllocConfig::default();
            (axis.set)(&mut cfg, x);
            cfg.normalized_for(allocator).is_none()
        }),
    }
}

/// Runs an adaptive refinement of `spec` and assembles the final
/// subgrid's report (`mode: "adaptive"` in the v2 header, stream-cache
/// tallies accumulated across all rounds). `progress` is called after
/// each evaluated point with the cumulative count and that point's
/// result.
///
/// # Errors
///
/// Returns [`ExploreError::Spec`] for an invalid sweep and
/// [`ExploreError::Engine`] for the first simulation failure.
pub fn run_adaptive(
    spec: &SweepSpec,
    exec_opts: &ExecOptions,
    adaptive: AdaptiveOptions,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<SweepReport, ExploreError> {
    spec.validate()?;
    let full = spec.normalized();
    let exhaustive = full.points().len();
    let budget = if adaptive.budget == 0 { exhaustive } else { adaptive.budget };
    let mut active = seed_active(&full.grids);
    let mut memo: HashMap<String, RunReport> = HashMap::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut iterations = 0u64;

    loop {
        iterations += 1;
        let derived = derived_spec(&full, &active).normalized();
        let points = derived.points();
        // Evaluate only this round's new points; earlier rounds' reports
        // replay from the memo, so converged refinement is free.
        let fresh: Vec<_> =
            points.iter().filter(|p| !memo.contains_key(&p.job_id())).cloned().collect();
        if !fresh.is_empty() {
            let set = build_jobs(&fresh, exec_opts);
            hits += set.stream_hits;
            misses += set.stream_misses;
            let base = memo.len();
            let results = alloc_locality::run_parallel_instrumented(
                set.jobs,
                exec_opts.resolved_threads(),
                |done, result| progress(base + done, result),
            )?;
            for (point, (result, metrics)) in fresh.iter().zip(results) {
                memo.insert(point.job_id(), RunReport::new(result, metrics));
            }
        }
        if iterations as usize >= adaptive.max_iterations() {
            break;
        }

        let objectives: Vec<Objectives> = points
            .iter()
            .map(|p| {
                Objectives::of(&memo[&p.job_id()].result).ok_or_else(|| {
                    ExploreError::Report(format!(
                        "{}/{} simulated no caches",
                        p.program, p.allocator
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let front = pareto_front(&objectives);

        // Front-directed bisection: halve the numeric intervals adjacent
        // to every front point, budget permitting.
        let mut added = false;
        for &i in &front {
            added |= bisect_around(&points[i], &full, &mut active, budget);
        }
        if !added {
            // Exploration round: the front may sit in an unsampled
            // interval no front point is adjacent to, so halve every
            // remaining interval once before giving up.
            added = bisect_everywhere(&full, &mut active, budget);
        }
        if !added {
            break;
        }
    }

    let derived = derived_spec(&full, &active).normalized();
    let points = derived.points();
    let reports = points.iter().map(|p| memo[&p.job_id()].clone()).collect();
    let exec = SweepExec {
        stream_hits: hits,
        stream_misses: misses,
        adaptive: Some(AdaptiveMeta {
            iterations,
            evaluated: points.len() as u64,
            exhaustive: exhaustive as u64,
            budget: budget as u64,
        }),
    };
    SweepReport::assemble_with(&derived, reports, &exec).map_err(ExploreError::Report)
}

/// Bisects the active intervals adjacent to one front point's position
/// on every numeric axis of every grid that could have produced it.
fn bisect_around(
    point: &alloc_locality::JobSpec,
    full: &SweepSpec,
    active: &mut Active,
    budget: usize,
) -> bool {
    let none = AllocConfig::default();
    let cfg = point.alloc_config.as_ref().unwrap_or(&none);
    let mut added = false;
    for (grid_idx, grid) in full.grids.iter().enumerate() {
        if grid.allocator != point.allocator {
            continue;
        }
        for (axis_idx, axis) in NUM_AXES.iter().enumerate() {
            let list = (axis.list)(grid);
            if list.len() < 2 {
                continue;
            }
            let Some(at) = value_index(list, (axis.knob)(cfg), &grid.allocator, axis) else {
                continue;
            };
            let set = &active[grid_idx][axis_idx];
            let below = set.range(..at).next_back().copied();
            let above = set.range(at + 1..).next().copied();
            for (lo, hi) in [(below, Some(at)), (Some(at), above)] {
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    if hi - lo > 1 {
                        added |=
                            try_activate(full, active, budget, grid_idx, axis_idx, (lo + hi) / 2);
                    }
                }
            }
        }
    }
    added
}

/// Bisects every remaining interval on every grid axis once.
fn bisect_everywhere(full: &SweepSpec, active: &mut Active, budget: usize) -> bool {
    let mut added = false;
    for grid_idx in 0..full.grids.len() {
        for axis_idx in 0..NUM_AXES.len() {
            let gaps: Vec<(usize, usize)> = {
                let set = &active[grid_idx][axis_idx];
                set.iter().zip(set.iter().skip(1)).map(|(&lo, &hi)| (lo, hi)).collect()
            };
            for (lo, hi) in gaps {
                if hi - lo > 1 {
                    added |= try_activate(full, active, budget, grid_idx, axis_idx, (lo + hi) / 2);
                }
            }
        }
    }
    added
}

/// Activates one index if the grown subgrid still fits the budget.
fn try_activate(
    full: &SweepSpec,
    active: &mut Active,
    budget: usize,
    grid_idx: usize,
    axis_idx: usize,
    index: usize,
) -> bool {
    if !active[grid_idx][axis_idx].insert(index) {
        return false;
    }
    if derived_spec(full, active).points().len() > budget {
        active[grid_idx][axis_idx].remove(&index);
        return false;
    }
    true
}
