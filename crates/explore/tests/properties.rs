//! Property tests for the Pareto front and the sweep executor's
//! bit-identity contract across pipeline modes.

use std::collections::HashMap;
use std::sync::Arc;

use alloc_locality::job_spec::program_by_label;
use alloc_locality::{Experiment, JobSpec, PipelineMode};
use explore::report::normalize_report;
use explore::{
    pareto_front, run_adaptive, run_sweep, AdaptiveOptions, ExecOptions, GridSpec, Objectives,
    SweepSpec,
};
use proptest::prelude::*;
use workloads::{AppEvent, Scale};

/// The brute-force oracle: a point is on the front iff no *other* point
/// dominates it — O(n²) all-pairs, trivially correct by definition.
fn oracle_front(objectives: &[Objectives]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&objectives[i]))
        })
        .collect()
}

/// Objective vectors drawn from small discrete grids, so ties,
/// duplicates, and dominance chains all occur often.
fn objectives_strategy() -> impl Strategy<Value = Vec<Objectives>> {
    proptest::collection::vec((0u8..6, 0u64..6, 0u64..6), 0..64).prop_map(|raw| {
        raw.into_iter()
            .map(|(m, i, p)| Objectives {
                miss_rate: f64::from(m) * 0.05,
                instructions: i * 1_000,
                peak_granted: p * 4_096,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sorted-candidate front matches the brute-force oracle
    /// exactly: nothing dominated survives, nothing undominated is
    /// pruned.
    #[test]
    fn pareto_front_equals_the_brute_force_oracle(objectives in objectives_strategy()) {
        prop_assert_eq!(pareto_front(&objectives), oracle_front(&objectives));
    }

    /// Front membership is internally consistent: no front point
    /// dominates another, and every pruned point has a dominator on the
    /// front (dominance is transitive, so a dominator off the front
    /// would imply one on it).
    #[test]
    fn front_points_are_mutually_undominated(objectives in objectives_strategy()) {
        let front = pareto_front(&objectives);
        for &i in &front {
            for &j in &front {
                prop_assert!(!objectives[i].dominates(&objectives[j]),
                    "front point {i} dominates front point {j}");
            }
        }
        for pruned in (0..objectives.len()).filter(|i| !front.contains(i)) {
            prop_assert!(
                front.iter().any(|&f| objectives[f].dominates(&objectives[pruned])),
                "pruned point {pruned} has no dominator on the front"
            );
        }
    }
}

/// The tentpole bit-identity contract, exercised in *both* pipeline
/// modes: a tuned sweep point driven off a shared event trace emits the
/// same report line as a direct spec-built run, whether sinks consume
/// the stream inline or through the sharded pipeline. Span wall-times —
/// execution telemetry, not simulation output — are zeroed on both
/// sides, exactly as sweep-report assembly does.
#[test]
fn shared_trace_points_match_direct_runs_in_both_pipeline_modes() {
    let spec: JobSpec = serde_json::from_str(
        r#"{"program":"espresso","allocator":"FirstFit","scale":0.002,
            "cache_kb":[16],"paging":false,
            "alloc_config":{"split_threshold":8,"roving":false}}"#,
    )
    .expect("spec parses");
    spec.validate().expect("spec is valid");
    let program = program_by_label(&spec.normalized().program).expect("known program");
    let events: Arc<Vec<AppEvent>> =
        Arc::new(program.spec().events(Scale(spec.normalized().scale)).collect());

    for mode in [PipelineMode::Inline, PipelineMode::Sharded] {
        let direct = spec
            .to_experiment()
            .expect("direct experiment builds")
            .pipeline(mode)
            .report()
            .expect("direct run");
        let shared = Experiment::with_shared_events(
            program.label(),
            Arc::clone(&events),
            spec.to_choice().expect("choice builds"),
        )
        .options(spec.to_options().expect("options build"))
        .pipeline(mode)
        .report()
        .expect("shared-trace run");
        let (mut direct, mut shared) = (direct, shared);
        normalize_report(&mut direct);
        normalize_report(&mut shared);
        assert_eq!(
            shared.to_jsonl_line(),
            direct.to_jsonl_line(),
            "shared-trace point diverged from the direct run in {mode:?} mode"
        );
    }
}

/// Axis-keyed trace sharing is invisible in the output: for every point
/// of a program × scale × family-grid cross product, a run driven off
/// the (program, scale)-pooled shared trace — exactly the pool the
/// executor builds — is byte-identical to regenerating that point's
/// events from its own spec, in both pipeline modes.
#[test]
fn axis_keyed_shared_traces_match_per_point_regeneration() {
    let spec = SweepSpec {
        programs: vec!["espresso".into(), "make".into()],
        scales: vec![0.002, 0.003],
        cache_kb: vec![16],
        paging: Some(false),
        ..SweepSpec::over(
            "espresso",
            0.002,
            vec![
                GridSpec { split_threshold: vec![8], ..GridSpec::baseline("FirstFit") },
                GridSpec { min_shift: vec![4], ..GridSpec::baseline("BSD") },
            ],
        )
    };
    spec.validate().expect("axis sweep is valid");
    let points = spec.normalized().points();
    assert_eq!(points.len(), 8, "2 programs x 2 scales x 2 family configs");

    let mut pool: HashMap<(String, u64), Arc<Vec<AppEvent>>> = HashMap::new();
    for mode in [PipelineMode::Inline, PipelineMode::Sharded] {
        for point in &points {
            let program = program_by_label(&point.program).expect("known program");
            let events = pool
                .entry((point.program.clone(), point.scale.to_bits()))
                .or_insert_with(|| Arc::new(program.spec().events(Scale(point.scale)).collect()));
            let mut shared = Experiment::with_shared_events(
                program.label(),
                Arc::clone(events),
                point.to_choice().expect("choice builds"),
            )
            .options(point.to_options().expect("options build"))
            .pipeline(mode)
            .report()
            .expect("shared-trace run");
            let mut direct = point
                .to_experiment()
                .expect("direct experiment builds")
                .pipeline(mode)
                .report()
                .expect("direct run");
            normalize_report(&mut shared);
            normalize_report(&mut direct);
            assert_eq!(
                shared.to_jsonl_line(),
                direct.to_jsonl_line(),
                "{}/{} at scale {} diverged under the shared trace in {mode:?} mode",
                point.program,
                point.allocator,
                point.scale
            );
        }
    }
}

/// With an unlimited budget, adaptive refinement is a pure reordering
/// of the exhaustive grid: bisection keeps activating knob values until
/// the subgrid *is* the grid — even from a sparse seed over a knob list
/// long enough to need several interval splits — so the final report
/// carries the same sweep id, byte-identical point rows, and the same
/// front as the exhaustive executor.
#[test]
fn full_budget_adaptive_covers_long_knob_lists_exhaustively() {
    let spec = SweepSpec {
        cache_kb: vec![16],
        paging: Some(false),
        ..SweepSpec::over(
            "espresso",
            0.002,
            vec![
                GridSpec {
                    split_threshold: vec![8, 16, 24, 32, 40],
                    ..GridSpec::baseline("FirstFit")
                },
                GridSpec { fast_max: vec![8, 32], ..GridSpec::baseline("QuickFit") },
            ],
        )
    };
    spec.validate().expect("sweep is valid");
    let exhaustive = run_sweep(&spec, 2, |_, _| {}).expect("exhaustive sweep");
    let adaptive =
        run_adaptive(&spec, &ExecOptions::threads(2), AdaptiveOptions::default(), |_, _| {})
            .expect("adaptive sweep");
    adaptive.validate().expect("adaptive report validates");
    assert_eq!(adaptive.header.mode, "adaptive");
    assert_eq!(adaptive.header.adaptive_evaluated, exhaustive.points.len() as u64);
    assert_eq!(adaptive.header.sweep_id, exhaustive.header.sweep_id);
    assert_eq!(adaptive.points, exhaustive.points);
    assert_eq!(adaptive.front, exhaustive.front);
}
