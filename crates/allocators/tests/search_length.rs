//! Paper finding 1 as an observable invariant: FirstFit walks a long,
//! scattered freelist per `malloc`, while segregated storage (BSD) and
//! QuickFit's quicklists allocate without searching. The recorder's
//! per-malloc `alloc.search_len` histogram makes the difference a
//! testable number instead of prose.

use allocators::AllocatorKind;
use obs::MemoryRecorder;
use sim_mem::{HeapImage, InstrCounter, MemCtx, NullSink, Phase};

/// Drives `kind` through a fragmentation-heavy malloc/free workload and
/// returns the mean per-malloc freelist search length it reported.
fn mean_search_len(kind: AllocatorKind) -> f64 {
    let mut heap = HeapImage::new();
    let mut sink = NullSink;
    let mut instrs = InstrCounter::new();
    let mut rec = MemoryRecorder::new();
    let mut ctx = MemCtx::batched(&mut heap, &mut sink, &mut instrs).with_recorder(&mut rec);
    ctx.set_phase(Phase::Malloc);
    let mut alloc = kind.build(&mut ctx).expect("allocator init");

    // Deterministic mixed-size traffic with interleaved frees: builds
    // the scattered small-block freelist that finding 1 blames. The
    // sizes stay <= 32 bytes often enough to exercise QuickFit's fast
    // lists, with periodic large requests that force real searches.
    let mut live = Vec::new();
    let mut x = 0x2545_f491u64;
    for i in 0..4000u32 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let size = match i % 7 {
            0..=2 => 4 + (x % 29) as u32,   // small: quicklist range
            3 | 4 => 40 + (x % 200) as u32, // medium
            5 => 300 + (x % 700) as u32,    // large
            _ => 8 + (x % 120) as u32,
        };
        live.push(alloc.malloc(size, &mut ctx).expect("malloc"));
        if i % 2 == 1 {
            let victim = live.swap_remove((x as usize / 7) % live.len());
            alloc.free(victim, &mut ctx).expect("free");
        }
    }
    ctx.flush();
    drop(ctx);

    let h = rec.histogram("alloc.search_len").expect("search_len observed");
    assert_eq!(h.count(), 4000, "{}: every malloc observes one search length", kind.label());
    h.mean()
}

#[test]
fn firstfit_searches_strictly_longer_than_bsd_and_quickfit() {
    let first_fit = mean_search_len(AllocatorKind::FirstFit);
    let bsd = mean_search_len(AllocatorKind::Bsd);
    let quick_fit = mean_search_len(AllocatorKind::QuickFit);

    // BSD never searches at all.
    assert_eq!(bsd, 0.0, "BSD is pure segregated storage");
    assert!(
        first_fit > quick_fit,
        "FirstFit mean search length {first_fit:.2} must exceed QuickFit's {quick_fit:.2}"
    );
    assert!(
        first_fit > bsd,
        "FirstFit mean search length {first_fit:.2} must exceed BSD's {bsd:.2}"
    );
    // The gap is the paper's point, not a rounding artifact: FirstFit
    // walks multiple blocks per malloc on a fragmented heap.
    assert!(
        first_fit >= 1.0,
        "FirstFit should average at least one freelist visit per malloc, got {first_fit:.2}"
    );
}

#[test]
fn gnu_gxx_segregation_shortens_searches_vs_firstfit() {
    // Finding 1's remedy in the same family: size-segregated bins (GNU
    // G++) search strictly less than one global freelist (FirstFit).
    let first_fit = mean_search_len(AllocatorKind::FirstFit);
    let gxx = mean_search_len(AllocatorKind::GnuGxx);
    assert!(
        first_fit > gxx,
        "FirstFit mean search length {first_fit:.2} must exceed GNU G++'s {gxx:.2}"
    );
}
