//! Every rebuilt allocator must be observationally identical to its
//! verbatim pre-rework port in `allocators::reference`.
//!
//! The rework (host-side shadow state, bitmap fit, O(1) unlink) is a
//! pure host-speed change: for any alloc/free script, the rebuilt
//! allocator and its reference port must produce
//!
//! * the identical emitted reference stream, *including* run-length
//!   boundaries (RLE merging and the 4096-ref flush cut-points are
//!   observable in captured streams),
//! * the identical heap image, word for word, up to the break,
//! * identical granted addresses and [`allocators::AllocStats`],
//! * identical per-phase instruction totals,
//! * identical recorder metrics for everything the reference also
//!   records (the rebuilt fast paths may add *new* counters —
//!   `alloc.bitmap_probe`, `alloc.quick_hit`, `alloc.boundary_coalesce`
//!   — which are filtered out before comparing).
//!
//! Randomized scripts cover the general interleavings; the deterministic
//! cases pin size-class boundaries and coalesce cascades, where an
//! off-by-one in class indexing or merge order would hide from uniform
//! random sizes.

use std::collections::BTreeMap;

use proptest::prelude::*;

use allocators::{reference, Allocator, SizeProfile};
use obs::MemoryRecorder;
use sim_mem::{AccessSink, Address, HeapImage, InstrCounter, MemCtx, MemRef, Phase, RefRun};

/// Counters that only the rebuilt fast paths emit; ignored when
/// comparing recorder state against the reference port.
const NEW_COUNTERS: [&str; 3] =
    ["alloc.bitmap_probe", "alloc.quick_hit", "alloc.boundary_coalesce"];

/// Captures the stream exactly as delivered: run boundaries included.
#[derive(Default)]
struct RunSink {
    runs: Vec<RefRun>,
}

impl AccessSink for RunSink {
    fn record(&mut self, r: MemRef) {
        self.runs.push(RefRun::once(r));
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.runs.extend_from_slice(runs);
    }
}

/// One scripted operation: allocate a size (at a call site), or free the
/// nth live object.
#[derive(Debug, Clone)]
enum Op {
    Malloc(u32, u32),
    Free(usize),
}

/// Everything observable about one run, for exact comparison.
#[derive(Debug, PartialEq)]
struct Observation {
    runs: Vec<RefRun>,
    heap_words: Vec<u32>,
    grants: Vec<Option<Address>>,
    stats: allocators::AllocStats,
    instrs: InstrCounter,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Vec<(u64, u64)>>,
}

/// Drives `ops` through the allocator `build` returns, mimicking the
/// engine's phase discipline (Malloc/Free around allocator calls, App
/// between), and captures every observable output.
fn observe(build: impl FnOnce(&mut MemCtx<'_>) -> Box<dyn Allocator>, ops: &[Op]) -> Observation {
    let mut heap = HeapImage::new();
    let mut sink = RunSink::default();
    let mut instrs = InstrCounter::new();
    let mut rec = MemoryRecorder::new();
    let mut grants = Vec::new();
    let stats = {
        let mut ctx = MemCtx::batched(&mut heap, &mut sink, &mut instrs).with_recorder(&mut rec);
        ctx.set_phase(Phase::Malloc);
        let mut alloc = build(&mut ctx);
        ctx.set_phase(Phase::App);

        let mut live: Vec<Address> = Vec::new();
        for op in ops {
            match *op {
                Op::Malloc(size, site) => {
                    ctx.set_phase(Phase::Malloc);
                    let got = alloc.malloc_at(size, site, &mut ctx).ok();
                    ctx.set_phase(Phase::App);
                    grants.push(got);
                    if let Some(p) = got {
                        live.push(p);
                    }
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let p = live.remove(i % live.len());
                    ctx.set_phase(Phase::Free);
                    alloc.free(p, &mut ctx).expect("free of live block");
                    ctx.set_phase(Phase::App);
                }
            }
        }
        ctx.flush();
        *alloc.stats()
    };

    let base = heap.base();
    let words = (heap.brk() - base) / 4;
    let heap_words = (0..words).map(|i| heap.read_u32(base + i * 4)).collect();

    let snap = rec.snapshot();
    let counters = snap
        .counters
        .iter()
        .filter(|(name, _)| !NEW_COUNTERS.contains(&name.as_str()))
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    let histograms =
        snap.histograms.iter().map(|(name, h)| (name.clone(), h.buckets.clone())).collect();

    Observation { runs: sink.runs, heap_words, grants, stats, instrs, counters, histograms }
}

/// Asserts the full observation equality, with field-by-field messages
/// so a divergence names what broke instead of dumping two megabyte
/// structs.
fn assert_equivalent(label: &str, new: &Observation, reference: &Observation) {
    assert_eq!(new.grants, reference.grants, "{label}: granted addresses diverge");
    assert_eq!(new.stats, reference.stats, "{label}: AllocStats diverge");
    assert_eq!(new.instrs, reference.instrs, "{label}: instruction phase totals diverge");
    assert_eq!(
        new.runs.len(),
        reference.runs.len(),
        "{label}: captured run counts diverge (RLE/flush boundaries?)"
    );
    if let Some(i) = (0..new.runs.len()).find(|&i| new.runs[i] != reference.runs[i]) {
        panic!(
            "{label}: reference streams diverge at run {i}: new={:?} reference={:?}",
            new.runs[i], reference.runs[i]
        );
    }
    assert_eq!(new.heap_words, reference.heap_words, "{label}: heap images diverge");
    assert_eq!(new.counters, reference.counters, "{label}: recorder counters diverge");
    assert_eq!(new.histograms, reference.histograms, "{label}: recorder histograms diverge");
}

/// The profile both `Custom` variants are built from.
fn profile() -> SizeProfile {
    [8u32, 16, 24, 40, 100, 8, 16, 16, 24].into_iter().collect()
}

/// Runs one script through a (new, reference) allocator pair by name.
fn check_pair(kind: &str, ops: &[Op]) {
    let new = |ops: &[Op]| match kind {
        "first_fit" => observe(|ctx| Box::new(allocators::FirstFit::new(ctx).unwrap()), ops),
        "best_fit" => observe(|ctx| Box::new(allocators::BestFit::new(ctx).unwrap()), ops),
        "bsd" => observe(|ctx| Box::new(allocators::Bsd::new(ctx).unwrap()), ops),
        "buddy" => observe(|ctx| Box::new(allocators::Buddy::new(ctx).unwrap()), ops),
        "gnu_gxx" => observe(|ctx| Box::new(allocators::GnuGxx::new(ctx).unwrap()), ops),
        "gnu_local" => observe(|ctx| Box::new(allocators::GnuLocal::new(ctx).unwrap()), ops),
        "quick_fit" => observe(|ctx| Box::new(allocators::QuickFit::new(ctx).unwrap()), ops),
        "custom" => {
            observe(|ctx| Box::new(allocators::Custom::from_profile(ctx, &profile()).unwrap()), ops)
        }
        "predictive" => observe(|ctx| Box::new(allocators::Predictive::new(ctx).unwrap()), ops),
        _ => unreachable!("unknown allocator {kind}"),
    };
    let old = |ops: &[Op]| match kind {
        "first_fit" => observe(|ctx| Box::new(reference::FirstFit::new(ctx).unwrap()), ops),
        "best_fit" => observe(|ctx| Box::new(reference::BestFit::new(ctx).unwrap()), ops),
        "bsd" => observe(|ctx| Box::new(reference::Bsd::new(ctx).unwrap()), ops),
        "buddy" => observe(|ctx| Box::new(reference::Buddy::new(ctx).unwrap()), ops),
        "gnu_gxx" => observe(|ctx| Box::new(reference::GnuGxx::new(ctx).unwrap()), ops),
        "gnu_local" => observe(|ctx| Box::new(reference::GnuLocal::new(ctx).unwrap()), ops),
        "quick_fit" => observe(|ctx| Box::new(reference::QuickFit::new(ctx).unwrap()), ops),
        "custom" => {
            observe(|ctx| Box::new(reference::Custom::from_profile(ctx, &profile()).unwrap()), ops)
        }
        "predictive" => observe(|ctx| Box::new(reference::Predictive::new(ctx).unwrap()), ops),
        _ => unreachable!("unknown allocator {kind}"),
    };
    assert_equivalent(kind, &new(ops), &old(ops));
}

fn op_strategy(max_size: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => ((1u32..=max_size), (0u32..64)).prop_map(|(s, site)| Op::Malloc(s, site)),
        // Tiny and exact-popular sizes, to keep quicklists and size maps hot.
        2 => (prop_oneof![Just(8u32), Just(16), Just(24), Just(40)], (0u32..64))
            .prop_map(|(s, site)| Op::Malloc(s, site)),
        3 => any::<proptest::sample::Index>().prop_map(|i| Op::Free(i.index(1 << 16))),
    ]
}

fn ops_strategy(max_size: u32) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(max_size), 1..250)
}

macro_rules! equivalence_tests {
    ($($name:ident => ($kind:literal, $max:expr);)*) => {
        $(
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(32))]
                #[test]
                fn $name(ops in ops_strategy($max)) {
                    check_pair($kind, &ops);
                }
            }
        )*
    };
}

equivalence_tests! {
    first_fit_matches_reference => ("first_fit", 2000);
    best_fit_matches_reference => ("best_fit", 2000);
    bsd_matches_reference => ("bsd", 4096);
    buddy_matches_reference => ("buddy", 4096);
    gnu_gxx_matches_reference => ("gnu_gxx", 2000);
    gnu_local_matches_reference => ("gnu_local", 4096);
    quick_fit_matches_reference => ("quick_fit", 2000);
    custom_matches_reference => ("custom", 4096);
    predictive_matches_reference => ("predictive", 2000);
}

/// Sizes straddling every class boundary the allocators key on: the
/// word size, quicklist FAST_MAX (32), power-of-two bin edges, the
/// chunked FRAG_MAX / SizeMap MAP_MAX (2048), and the BSD page.
const BOUNDARY_SIZES: [u32; 24] = [
    1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 127, 128, 129, 2047, 2048, 2049,
    4096,
];

#[test]
fn size_class_boundaries_match_reference() {
    let mut ops = Vec::new();
    for (i, &s) in BOUNDARY_SIZES.iter().enumerate() {
        ops.push(Op::Malloc(s, (i % 64) as u32));
        ops.push(Op::Malloc(s, (i % 64) as u32));
    }
    // Free every other object oldest-first, then everything else
    // newest-first, then re-allocate the same ladder to recycle.
    for i in 0..BOUNDARY_SIZES.len() {
        ops.push(Op::Free(i));
    }
    for _ in 0..BOUNDARY_SIZES.len() {
        ops.push(Op::Free(usize::MAX));
    }
    for (i, &s) in BOUNDARY_SIZES.iter().enumerate() {
        ops.push(Op::Malloc(s, (i % 64) as u32));
    }
    for kind in [
        "first_fit",
        "best_fit",
        "bsd",
        "buddy",
        "gnu_gxx",
        "gnu_local",
        "quick_fit",
        "custom",
        "predictive",
    ] {
        check_pair(kind, &ops);
    }
}

#[test]
fn coalesce_cascades_match_reference() {
    // Carve a run of adjacent blocks, then free in an order that forces
    // backward merges, forward merges, and merge-into-merged cascades;
    // finally allocate a block that only fits in the fully coalesced
    // span.
    let mut ops = Vec::new();
    for _ in 0..16 {
        ops.push(Op::Malloc(48, 0));
    }
    // Free evens oldest-first: each free's neighbors stay allocated.
    for _ in 0..8 {
        ops.push(Op::Free(0));
    }
    // Free the rest newest-first: every free now merges both ways.
    for _ in 0..8 {
        ops.push(Op::Free(usize::MAX));
    }
    ops.push(Op::Malloc(48 * 12, 0));
    for kind in ["first_fit", "best_fit", "gnu_gxx", "buddy"] {
        check_pair(kind, &ops);
    }
}

#[test]
fn flush_boundary_runs_match_reference() {
    // Enough operations to cross several 4096-ref flush boundaries, so a
    // run split at the cut-point must split identically in both lanes.
    let mut ops = Vec::new();
    for i in 0..1500u32 {
        ops.push(Op::Malloc(8 + (i % 5) * 8, i % 64));
        if i % 3 == 0 {
            ops.push(Op::Free(0));
        }
    }
    for kind in ["first_fit", "bsd", "quick_fit", "gnu_local"] {
        check_pair(kind, &ops);
    }
}
