//! Property-based tests: every allocator must uphold the fundamental
//! malloc contract under arbitrary allocation/free interleavings.
//!
//! * payloads are word-aligned and never overlap while live,
//! * payloads lie inside the simulated heap,
//! * statistics balance (live counts return to zero after freeing all),
//! * the tagged allocators' heap structure survives a full walk,
//! * granted bytes never undercut the request.

use proptest::prelude::*;

use allocators::{
    Allocator, AllocatorKind, BestFit, Buddy, Custom, Predictive, SizeMap, SizeProfile,
};
use sim_mem::{Address, CountingSink, HeapImage, InstrCounter, MemCtx};

/// One scripted operation: allocate a size, or free the nth-oldest live
/// object.
#[derive(Debug, Clone)]
enum Op {
    Malloc(u32),
    Free(usize),
}

fn op_strategy(max_size: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..=max_size).prop_map(Op::Malloc),
        // A small weighted mix of tiny and exact-popular sizes.
        2 => prop_oneof![Just(8u32), Just(16), Just(24), Just(40)].prop_map(Op::Malloc),
        3 => any::<proptest::sample::Index>().prop_map(|i| Op::Free(i.index(1 << 16))),
    ]
}

fn ops_strategy(max_size: u32) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(max_size), 1..200)
}

/// Runs a script against one allocator and checks the contract.
fn check_contract(kind: &str, ops: &[Op]) {
    let mut heap = HeapImage::new();
    let mut sink = CountingSink::new();
    let mut instrs = InstrCounter::new();
    let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
    let mut alloc: Box<dyn Allocator> = match kind {
        "FirstFit" => AllocatorKind::FirstFit.build(&mut ctx).expect("build"),
        "GNU G++" => AllocatorKind::GnuGxx.build(&mut ctx).expect("build"),
        "BSD" => AllocatorKind::Bsd.build(&mut ctx).expect("build"),
        "GNU local" => AllocatorKind::GnuLocal.build(&mut ctx).expect("build"),
        "QuickFit" => AllocatorKind::QuickFit.build(&mut ctx).expect("build"),
        "Custom" => {
            let profile: SizeProfile = [8u32, 16, 24, 40, 100].into_iter().collect();
            Box::new(Custom::from_profile(&mut ctx, &profile).expect("build"))
        }
        "BestFit" => Box::new(BestFit::new(&mut ctx).expect("build")),
        "Buddy" => Box::new(Buddy::new(&mut ctx).expect("build")),
        "Predictive" => Box::new(Predictive::new(&mut ctx).expect("build")),
        other => panic!("unknown allocator {other}"),
    };

    // Live payload intervals, ordered by address: (start, size, granted-ok)
    let mut live: Vec<(Address, u32)> = Vec::new();
    for op in ops {
        match *op {
            Op::Malloc(size) => {
                let before_granted = alloc.stats().live_granted;
                let p = alloc.malloc(size, &mut ctx).expect("malloc within limit");
                let granted = alloc.stats().live_granted - before_granted;
                assert!(p.is_word_aligned(), "{kind}: unaligned payload {p}");
                assert!(
                    granted >= u64::from(size),
                    "{kind}: granted {granted} below request {size}"
                );
                assert!(
                    ctx.heap().contains(p, u64::from(size)),
                    "{kind}: payload {p}+{size} outside heap"
                );
                // No overlap with any live payload.
                for &(q, qsize) in &live {
                    let disjoint = p + u64::from(size) <= q || q + u64::from(qsize) <= p;
                    assert!(disjoint, "{kind}: {p}+{size} overlaps live {q}+{qsize}");
                }
                live.push((p, size));
            }
            Op::Free(idx) => {
                if live.is_empty() {
                    continue;
                }
                let (p, _) = live.swap_remove(idx % live.len());
                alloc.free(p, &mut ctx).expect("free of live payload");
            }
        }
    }
    // Balance check: free the rest and verify the books close.
    for (p, _) in live.drain(..) {
        alloc.free(p, &mut ctx).expect("final free");
    }
    assert_eq!(alloc.stats().live_objects(), 0, "{kind}: objects leak");
    assert_eq!(alloc.stats().live_granted, 0, "{kind}: granted bytes leak");
}

macro_rules! contract_tests {
    ($($test:ident => $kind:literal, $max:expr;)*) => {
        $(
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]
                #[test]
                fn $test(ops in ops_strategy($max)) {
                    check_contract($kind, &ops);
                }
            }
        )*
    };
}

contract_tests! {
    first_fit_contract => "FirstFit", 4096;
    gnu_gxx_contract => "GNU G++", 4096;
    bsd_contract => "BSD", 4096;
    gnu_local_contract => "GNU local", 16384;
    quick_fit_contract => "QuickFit", 4096;
    custom_contract => "Custom", 16384;
    best_fit_contract => "BestFit", 4096;
    buddy_contract => "Buddy", 16384;
    predictive_contract => "Predictive", 16384;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tagged allocators' heap must walk cleanly (headers == footers,
    /// blocks tile, coalescing leaves no adjacent free pairs) after any
    /// script.
    #[test]
    fn first_fit_heap_walks_clean(ops in ops_strategy(2048)) {
        use allocators::verify::check_tagged_heap;
        use allocators::layout::{list, TAG};
        use allocators::FirstFit;

        let mut heap = HeapImage::new();
        let mut sink = CountingSink::new();
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        let mut ff = FirstFit::new(&mut ctx).expect("build");
        let mut live: Vec<Address> = Vec::new();
        for op in &ops {
            match *op {
                Op::Malloc(size) => live.push(ff.malloc(size, &mut ctx).expect("malloc")),
                Op::Free(idx) => {
                    if !live.is_empty() {
                        let p = live.swap_remove(idx % live.len());
                        ff.free(p, &mut ctx).expect("free");
                    }
                }
            }
        }
        let start = ff.freelist_head() + list::SENTINEL_BYTES + TAG;
        let walk = check_tagged_heap(&ctx, start).expect("consistent heap");
        prop_assert_eq!(walk.adjacent_free_pairs, 0, "coalescing missed work");
        prop_assert_eq!(walk.allocated_blocks, live.len() as u64);
    }

    /// SizeMap invariants: rounding never shrinks, classes cover all
    /// mappable sizes, and the bounded-fragmentation policy honours its
    /// bound above the minimum class.
    #[test]
    fn size_map_rounding_is_sound(
        sizes in proptest::collection::vec(1u32..=2048, 1..50),
        bound in 0.05f64..0.9,
    ) {
        let m = SizeMap::from_classes(sizes.iter().copied());
        for &s in &sizes {
            let c = m.rounded(s).expect("mapped");
            prop_assert!(c >= s);
        }
        let b = SizeMap::bounded_fragmentation(bound);
        for s in (8u32..=2048).step_by(37) {
            let c = b.rounded(s).expect("mapped");
            prop_assert!(c >= s);
            // Waste is measured against the word-rounded request (no
            // word-aligned allocator can grant less than a whole word).
            let rounded = s.div_ceil(4) * 4;
            let waste = f64::from(c - rounded) / f64::from(c);
            prop_assert!(waste <= bound + 1e-9, "size {} wastes {} in class {}", s, waste, c);
        }
    }

    /// A profile-driven map gives every profiled size a zero-waste class.
    #[test]
    fn profiled_sizes_get_exact_classes(
        sizes in proptest::collection::vec(8u32..=2048, 1..10),
    ) {
        let mut profile = SizeProfile::new();
        for &s in &sizes {
            for _ in 0..100 {
                profile.record(s);
            }
        }
        let m = SizeMap::from_profile(&profile, sizes.len(), 0.25);
        for &s in &sizes {
            let rounded = s.div_ceil(4) * 4;
            prop_assert_eq!(m.rounded(s), Some(rounded.max(8)));
        }
    }
}
