//! `PREDICTIVE`: call-site lifetime prediction — the paper's §5.1 future
//! work, made concrete.
//!
//! "We also hope to include other work in program behavior prediction
//! based on call site information \[2\] in the synthesized allocators"
//! — reference \[2\] being Barrett & Zorn, *Using Lifetime Predictors to
//! Improve Memory Allocation Performance* (PLDI 1993).
//!
//! The idea: objects allocated at the same call site tend to share a
//! fate. The allocator keeps a per-site record of whether past objects
//! died young, predicts each new object accordingly, and segregates
//! *short-lived* and *long-lived* objects into separate chunk pools.
//! Short-lived cohorts then die together, so their chunks empty and
//! recycle quickly, while long-lived objects pack densely and never
//! fragment the nursery.
//!
//! Implementation notes, all faithful to a real C implementation and
//! therefore all visible in the reference trace:
//!
//! * an 8-byte header per object records its site and birth time (the
//!   price of prediction — contrast with Table 6's boundary tags);
//! * the site table lives in the heap (one `(died-young, died-old)`
//!   counter pair per site) and is read on allocation, updated on free;
//! * both pools are [`crate::chunked::ChunkedHeap`]s, so placement and
//!   reclamation match the synthesized allocator's machinery.

use sim_mem::{Address, MemCtx};

use crate::chunked::{ChunkedHeap, PurgePolicy, CHUNK};
use crate::shadow::WordMirror;
use crate::{AllocError, AllocStats, Allocator, SizeMap};

/// Number of distinct call sites tracked (extras alias, as a real
/// fixed-size site hash would).
pub const MAX_SITES: u32 = 64;

/// An object freed within this many allocations of its birth counts as
/// short-lived (the default working-set clock).
pub const SHORT_AGE: u32 = 5_000;

/// Per-object header: site word + birth word.
const HEADER: u32 = 8;

/// Configuration knobs, exposed for the design-space sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictiveConfig {
    /// Working-set clock threshold: an object freed within this many
    /// allocations of its birth counts as short-lived when the site
    /// history is updated. Must be positive.
    pub short_age: u32,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig { short_age: SHORT_AGE }
    }
}

/// The lifetime-predicting allocator. See the module docs.
#[derive(Debug)]
pub struct Predictive {
    /// Nursery pool for predicted-short objects.
    short: ChunkedHeap,
    /// Tenured pool for predicted-long objects.
    long: ChunkedHeap,
    /// In-heap size-mapping array shared by both pools.
    map: SizeMap,
    map_base: Address,
    /// In-heap site table: two words (short deaths, long deaths) per site.
    sites: Address,
    /// Allocation clock, for object ages.
    clock: u32,
    config: PredictiveConfig,
    stats: AllocStats,
    /// Mirror of the site table (exclusively ours). Object headers are
    /// NOT mirrored: their words double as fragment links owned by the
    /// pools' own engines, so header reads stay real heap loads.
    mirror: WordMirror,
}

impl Predictive {
    /// Creates a predictive allocator with bounded-fragmentation size
    /// classes in both pools.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata cannot be reserved.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        Self::with_config(ctx, PredictiveConfig::default())
    }

    /// Creates a predictive allocator with explicit knobs. The default
    /// config reproduces [`Predictive::new`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata cannot be reserved.
    ///
    /// # Panics
    ///
    /// Panics if `short_age` is zero (everything would count long-lived
    /// before its first birthday).
    pub fn with_config(ctx: &mut MemCtx<'_>, config: PredictiveConfig) -> Result<Self, AllocError> {
        assert!(config.short_age > 0, "short_age must be positive");
        let map = SizeMap::bounded_fragmentation(0.25);
        let map_base = map.write_to_heap(ctx)?;
        let mut mirror = WordMirror::new();
        let sites = ctx.sbrk(u64::from(MAX_SITES) * 8)?;
        for i in 0..MAX_SITES {
            mirror.store(ctx, sites + u64::from(i) * 8, 0);
            mirror.store(ctx, sites + u64::from(i) * 8 + 4, 0);
        }
        let classes = map.class_sizes().to_vec();
        let short = ChunkedHeap::with_policy(ctx, classes.clone(), PurgePolicy::Retain(2))?;
        let long = ChunkedHeap::with_policy(ctx, classes, PurgePolicy::Retain(1))?;
        Ok(Predictive {
            short,
            long,
            map,
            map_base,
            sites,
            clock: 0,
            config,
            stats: AllocStats::new(),
            mirror,
        })
    }

    fn site_addr(&self, site: u32) -> Address {
        self.sites + u64::from(site % MAX_SITES) * 8
    }

    /// Reads the site's history and predicts whether the next object
    /// dies young. Unseen sites are optimistically predicted short,
    /// as Barrett & Zorn's predictors do.
    fn predict_short(&mut self, site: u32, ctx: &mut MemCtx<'_>) -> bool {
        let a = self.site_addr(site);
        let shorts = self.mirror.load(ctx, a);
        let longs = self.mirror.load(ctx, a + 4);
        ctx.ops(2);
        shorts >= longs
    }

    /// Records an observed death age for the site, with halving decay so
    /// the history adapts to phase changes.
    fn learn(&mut self, site: u32, age: u32, ctx: &mut MemCtx<'_>) {
        let a = self.site_addr(site);
        let mut shorts = self.mirror.load(ctx, a);
        let mut longs = self.mirror.load(ctx, a + 4);
        ctx.ops(3);
        if age <= self.config.short_age {
            shorts += 1;
        } else {
            longs += 1;
        }
        if shorts + longs >= 1 << 16 {
            shorts /= 2;
            longs /= 2;
        }
        self.mirror.store(ctx, a, shorts);
        self.mirror.store(ctx, a + 4, longs);
    }

    /// Which pool owns `addr`, if any: try a free on `short` first and
    /// fall back to `long` (the wrong pool safely reports the chunk as
    /// foreign).
    fn free_from_pools(&mut self, block: Address, ctx: &mut MemCtx<'_>) -> Result<u32, AllocError> {
        match self.short.free_at(block, ctx) {
            Ok(granted) => Ok(granted),
            Err(AllocError::InvalidFree(_)) => self.long.free_at(block, ctx),
            Err(e) => Err(e),
        }
    }
}

impl Allocator for Predictive {
    fn name(&self) -> &'static str {
        "Predictive"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        self.malloc_at(size, 0, ctx)
    }

    fn malloc_at(
        &mut self,
        size: u32,
        site: u32,
        ctx: &mut MemCtx<'_>,
    ) -> Result<Address, AllocError> {
        let internal = size.max(1) + HEADER;
        ctx.ops(4);
        let short = self.predict_short(site, ctx);
        let pool = if short { &mut self.short } else { &mut self.long };
        let (block, granted) = if internal <= self.map.max_mapped() {
            let class = self.map.lookup_shadow(self.map_base, internal, ctx);
            let a = pool.alloc_frag(class, ctx)?;
            (a, self.map.class_sizes()[class])
        } else {
            let a = pool.alloc_large(internal, ctx)?;
            (a, internal.div_ceil(CHUNK) * CHUNK)
        };
        // The prediction header: site and birth time.
        ctx.store(block, site);
        ctx.store(block + 4, self.clock);
        self.clock = self.clock.wrapping_add(1);
        // Prediction plus class lookup is constant-time — no freelist is
        // searched; the zero keeps the histogram comparable.
        ctx.obs_observe("alloc.search_len", 0);
        self.stats.note_malloc(size, granted);
        Ok(block + u64::from(HEADER))
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if ptr.raw() < u64::from(HEADER) || !ctx.heap().contains(ptr - u64::from(HEADER), 8) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let block = ptr - u64::from(HEADER);
        let site = ctx.load(block);
        let birth = ctx.load(block + 4);
        ctx.ops(3);
        let granted = self.free_from_pools(block, ctx)?;
        let age = self.clock.wrapping_sub(birth);
        self.learn(site, age, ctx);
        // Pooled segregated storage never coalesces; record the zero so
        // the histogram covers every free.
        ctx.obs_observe("alloc.coalesce_per_free", 0);
        self.stats.note_free(granted);
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    #[test]
    fn basic_round_trip_balances() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut p = Predictive::new(&mut ctx).unwrap();
        let a = p.malloc_at(24, 3, &mut ctx).unwrap();
        let b = p.malloc_at(100, 7, &mut ctx).unwrap();
        assert!(a.is_word_aligned() && b.is_word_aligned());
        p.free(a, &mut ctx).unwrap();
        p.free(b, &mut ctx).unwrap();
        assert_eq!(p.stats().live_objects(), 0);
        assert_eq!(p.stats().live_granted, 0);
    }

    #[test]
    fn long_lived_sites_migrate_to_the_tenured_pool() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut p = Predictive::new(&mut ctx).unwrap();
        // Train site 9 as long-lived: objects survive > SHORT_AGE allocs.
        let old: Vec<_> = (0..8).map(|_| p.malloc_at(24, 9, &mut ctx).unwrap()).collect();
        // Age the clock past the threshold with churn on another site.
        for _ in 0..SHORT_AGE + 10 {
            let t = p.malloc_at(8, 1, &mut ctx).unwrap();
            p.free(t, &mut ctx).unwrap();
        }
        for q in old {
            p.free(q, &mut ctx).unwrap();
        }
        // Site 9 is now predicted long; site 1 short. Their objects land
        // in different pools — i.e. different chunks.
        let long_obj = p.malloc_at(24, 9, &mut ctx).unwrap();
        let short_obj = p.malloc_at(24, 1, &mut ctx).unwrap();
        let chunk = |a: Address| a.raw() / 4096;
        assert_ne!(chunk(long_obj), chunk(short_obj), "pools must segregate");
    }

    #[test]
    fn shorter_clock_tenures_sites_sooner() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        // With a 10-allocation clock, surviving 50 churn cycles already
        // counts as long-lived.
        let mut p = Predictive::with_config(&mut ctx, PredictiveConfig { short_age: 10 }).unwrap();
        let old: Vec<_> = (0..4).map(|_| p.malloc_at(24, 9, &mut ctx).unwrap()).collect();
        for _ in 0..50 {
            let t = p.malloc_at(8, 1, &mut ctx).unwrap();
            p.free(t, &mut ctx).unwrap();
        }
        for q in old {
            p.free(q, &mut ctx).unwrap();
        }
        assert!(!p.predict_short(9, &mut ctx), "site 9 should be predicted long");
        // The default clock would still call those objects short-lived.
        const { assert!(50 + 8 < SHORT_AGE) };
    }

    #[test]
    fn unseen_sites_default_to_short() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut p = Predictive::new(&mut ctx).unwrap();
        assert!(p.predict_short(42, &mut ctx));
    }

    #[test]
    fn learning_is_in_the_trace() {
        let mut fx = Fx::new();
        let refs_before;
        {
            let mut ctx = fx.ctx();
            let mut p = Predictive::new(&mut ctx).unwrap();
            let a = p.malloc_at(16, 2, &mut ctx).unwrap();
            refs_before = fx.sink.stats().meta_refs();
            let mut ctx = fx.ctx();
            p.free(a, &mut ctx).unwrap();
        }
        // A free performs header reads, pool work, and site-table update.
        assert!(fx.sink.stats().meta_refs() > refs_before + 5);
    }

    #[test]
    fn header_overhead_is_accounted() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut p = Predictive::new(&mut ctx).unwrap();
        // 24-byte request + 8-byte header = 32 internal bytes, granted
        // its bounded-fragmentation class (≥ 32, ≤ 25% over).
        p.malloc_at(24, 0, &mut ctx).unwrap();
        let granted = p.stats().live_granted;
        assert!((32..=44).contains(&granted), "granted {granted}");
    }

    #[test]
    fn mixed_churn_stays_consistent() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut p = Predictive::new(&mut ctx).unwrap();
        let mut live = Vec::new();
        for i in 0..600u32 {
            let site = i % 5;
            let size = 8 + (i * 13) % 3000;
            live.push(p.malloc_at(size, site, &mut ctx).unwrap());
            if i % 2 == 1 {
                let victim = live.swap_remove((i as usize * 7) % live.len());
                p.free(victim, &mut ctx).unwrap();
            }
        }
        for q in live {
            p.free(q, &mut ctx).unwrap();
        }
        assert_eq!(p.stats().live_objects(), 0);
        assert_eq!(p.stats().live_granted, 0);
    }

    #[test]
    fn double_free_detected_via_pools() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut p = Predictive::new(&mut ctx).unwrap();
        let a = p.malloc_at(500, 0, &mut ctx).unwrap();
        let big = p.malloc_at(10_000, 0, &mut ctx).unwrap();
        p.free(big, &mut ctx).unwrap();
        // Freeing a pointer into the now-free large chunk is caught.
        assert!(matches!(p.free(big, &mut ctx), Err(AllocError::InvalidFree(_))));
        p.free(a, &mut ctx).unwrap();
    }
}
