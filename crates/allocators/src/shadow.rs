//! Host-side shadow state for the rebuilt allocator hot paths.
//!
//! The allocators keep their metadata *in* the simulated heap, and every
//! metadata access is part of the measured phenomenon: it must emit a
//! reference and charge an instruction. The pre-rework implementations
//! also *read that metadata back* through the multi-megabyte heap image
//! byte vector, which is where the host CPU time went. The rework keeps
//! the traced cost model bit-identical while serving the *values* from
//! compact host-side structures:
//!
//! * [`WordMirror`] — a dense `u32` mirror of every metadata word the
//!   allocator has stored, indexed by heap offset. A mirrored load calls
//!   [`sim_mem::MemCtx::shadow_load`], which emits the same reference
//!   and charges the same instruction as a real load but returns the
//!   mirrored value (debug builds assert coherence against the image).
//! * [`ShadowList`] — a slab of freelist nodes `{addr, size, next,
//!   prev}` mirroring the in-heap circular doubly-linked lists. Walks
//!   iterate cache-dense slots with block sizes cached inline; unlink is
//!   O(1) by slot handle.
//! * [`ClassBitmap`] — a two-level `u64` occupancy bitmap (summary word
//!   over 64 leaf words, find-first-set via `trailing_zeros`), the "Fast
//!   Bitmap Fit" structure. The bitmap answers "is any class ≥ k
//!   occupied?" in O(1) word scans *on the host*; it cannot remove any
//!   traced accesses (a failed walk must still emit its full reference
//!   sequence), but it lets the allocator decide up front whether a walk
//!   will succeed and take the extend path without redundant host work.
//!
//! Stores always write through to the heap image, so the image stays the
//! byte-exact source of truth for `verify::check_tagged_heap`, the
//! equivalence property tests, and every debug assertion.

use sim_mem::heap::HEAP_BASE;
use sim_mem::{Address, MemCtx};

use crate::layout::{NEXT_OFF, PREV_OFF};

/// Dense host-side mirror of metadata words, indexed by word offset from
/// [`HEAP_BASE`]. Grows on store; loads of never-stored words return 0,
/// matching the zero-initialized heap image.
#[derive(Debug, Default)]
pub struct WordMirror {
    words: Vec<u32>,
}

impl WordMirror {
    /// An empty mirror.
    #[must_use]
    pub fn new() -> Self {
        WordMirror { words: Vec::new() }
    }

    #[inline]
    fn index(addr: Address) -> usize {
        let off = addr.raw().checked_sub(HEAP_BASE).expect("address below heap base");
        debug_assert_eq!(off % 4, 0, "unaligned metadata word at {addr}");
        (off / 4) as usize
    }

    /// The mirrored value at `addr` without touching the simulated heap.
    #[inline]
    #[must_use]
    pub fn get(&self, addr: Address) -> u32 {
        self.words.get(Self::index(addr)).copied().unwrap_or(0)
    }

    /// Records `value` as the mirror of `addr`, growing as needed.
    #[inline]
    pub fn set(&mut self, addr: Address, value: u32) {
        let i = Self::index(addr);
        if i >= self.words.len() {
            self.words.resize(i + 1, 0);
        }
        self.words[i] = value;
    }

    /// A traced metadata load served from the mirror: emits the same
    /// reference and charges the same instruction as [`MemCtx::load`].
    #[inline]
    pub fn load(&self, ctx: &mut MemCtx<'_>, addr: Address) -> u32 {
        ctx.shadow_load(addr, self.get(addr))
    }

    /// A traced write-through metadata store: updates the heap image via
    /// [`MemCtx::store`] *and* the mirror.
    #[inline]
    pub fn store(&mut self, ctx: &mut MemCtx<'_>, addr: Address, value: u32) {
        ctx.store(addr, value);
        self.set(addr, value);
    }
}

/// Slot handle into a [`ShadowList`] slab. `NIL` marks list ends inside
/// the slab; the in-heap structure it mirrors uses sentinel addresses.
pub type Slot = u32;
const NIL: Slot = u32::MAX;

/// Slab entry. The block address is stored as its raw heap word
/// (simulated addresses fit in `u32`, see [`word`]) so a node packs
/// into 16 bytes — walks touch half the slab cache lines they would
/// with a widened `Address`.
#[derive(Debug, Clone, Copy)]
struct Node {
    addr: u32,
    size: u32,
    next: Slot,
    prev: Slot,
}

/// Host-side mirror of one or more in-heap doubly-linked free lists.
///
/// Each list `k` mirrors the membership *and order* of the in-heap list
/// whose sentinel the allocator owns, with each node's block size cached
/// inline so a first-fit or best-fit walk never touches the heap image.
/// The walk itself still emits every traced access (the caller replays
/// the reference pattern of the original walk); this structure only
/// removes the *host-side* pointer chasing.
///
/// Nodes are slab-allocated and recycled through an internal free list,
/// and a word-indexed `(addr → slot)` table gives O(1) handle lookup
/// when an unlink starts from a heap address rather than a walk
/// position. The table is indexed like [`WordMirror`] — one entry per
/// heap word, grown on demand — so its footprint tracks the heap image
/// the engine already holds, and no list operation pays more than a
/// few array stores.
#[derive(Debug)]
pub struct ShadowList {
    nodes: Vec<Node>,
    /// Head slot of each mirrored list (NIL when empty).
    heads: Vec<Slot>,
    /// Tail slot of each mirrored list (NIL when empty).
    tails: Vec<Slot>,
    /// Recycled slots.
    free: Vec<Slot>,
    /// Slot at word index `(addr - HEAP_BASE) / 4`, NIL when no node
    /// mirrors that address.
    slot_at: Vec<Slot>,
    /// Number of live nodes across all lists.
    len: usize,
}

impl ShadowList {
    /// A slab mirroring `lists` independent in-heap lists, all empty.
    #[must_use]
    pub fn new(lists: usize) -> Self {
        ShadowList {
            nodes: Vec::new(),
            heads: vec![NIL; lists],
            tails: vec![NIL; lists],
            free: Vec::new(),
            slot_at: Vec::new(),
            len: 0,
        }
    }

    /// Number of nodes across all mirrored lists.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every mirrored list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether list `k` is empty.
    #[must_use]
    pub fn list_is_empty(&self, k: usize) -> bool {
        self.heads[k] == NIL
    }

    fn alloc_slot(&mut self, node: Node) -> Slot {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as Slot
        }
    }

    #[inline]
    fn word_index(addr: Address) -> usize {
        let off = addr.raw().checked_sub(HEAP_BASE).expect("address below heap base");
        debug_assert_eq!(off % 4, 0, "unaligned shadow node at {addr}");
        (off / 4) as usize
    }

    #[inline]
    fn index_insert(&mut self, addr: Address, slot: Slot) {
        let i = Self::word_index(addr);
        if i >= self.slot_at.len() {
            self.slot_at.resize(i + 1, NIL);
        }
        debug_assert_eq!(self.slot_at[i], NIL, "duplicate shadow node for {addr}");
        self.slot_at[i] = slot;
        self.len += 1;
    }

    #[inline]
    fn index_remove(&mut self, addr: Address) -> Slot {
        let i = Self::word_index(addr);
        let slot = self.slot_at[i];
        debug_assert_ne!(slot, NIL, "no shadow node for {addr}");
        self.slot_at[i] = NIL;
        self.len -= 1;
        slot
    }

    /// The slot mirroring block `addr`, if it is on any list.
    #[must_use]
    pub fn slot_of(&self, addr: Address) -> Option<Slot> {
        let slot = self.slot_at.get(Self::word_index(addr)).copied().unwrap_or(NIL);
        (slot != NIL).then_some(slot)
    }

    /// Pushes a node at the *front* of list `k` (the position
    /// `list::insert_after(sentinel, b)` produces in the heap).
    pub fn push_front(&mut self, k: usize, addr: Address, size: u32) {
        let old = self.heads[k];
        let slot = self.alloc_slot(Node { addr: word(addr), size, next: old, prev: NIL });
        if old == NIL {
            self.tails[k] = slot;
        } else {
            self.nodes[old as usize].prev = slot;
        }
        self.heads[k] = slot;
        self.index_insert(addr, slot);
    }

    /// Pushes a node at the *back* of list `k` (the position
    /// `list::insert_after(sentinel.prev, b)` produces, i.e. appending
    /// before a circular sentinel).
    pub fn push_back(&mut self, k: usize, addr: Address, size: u32) {
        let old = self.tails[k];
        let slot = self.alloc_slot(Node { addr: word(addr), size, next: NIL, prev: old });
        if old == NIL {
            self.heads[k] = slot;
        } else {
            self.nodes[old as usize].next = slot;
        }
        self.tails[k] = slot;
        self.index_insert(addr, slot);
    }

    /// Inserts `addr` immediately after the node mirrored by `after` on
    /// list `k` (mirrors `list::insert_after(after_addr, b)` for a
    /// non-sentinel predecessor).
    pub fn insert_after(&mut self, k: usize, after: Slot, addr: Address, size: u32) {
        let next = self.nodes[after as usize].next;
        let slot = self.alloc_slot(Node { addr: word(addr), size, next, prev: after });
        self.nodes[after as usize].next = slot;
        if next == NIL {
            self.tails[k] = slot;
        } else {
            self.nodes[next as usize].prev = slot;
        }
        self.index_insert(addr, slot);
    }

    /// Unlinks the node at `slot` from list `k` in O(1) and returns its
    /// `(addr, size)`.
    pub fn unlink(&mut self, k: usize, slot: Slot) -> (Address, u32) {
        let Node { addr, size, next, prev } = self.nodes[slot as usize];
        let addr = unword(addr);
        if prev == NIL {
            self.heads[k] = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tails[k] = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        let removed = self.index_remove(addr);
        debug_assert_eq!(removed, slot);
        self.free.push(slot);
        (addr, size)
    }

    /// Unlinks the node mirroring block `addr` (any list `k`) in
    /// O(log n), returning its size.
    pub fn unlink_addr(&mut self, k: usize, addr: Address) -> Option<u32> {
        let slot = self.slot_of(addr)?;
        Some(self.unlink(k, slot).1)
    }

    /// Updates the cached size of the node at `slot`.
    pub fn set_size(&mut self, slot: Slot, size: u32) {
        self.nodes[slot as usize].size = size;
    }

    /// Replaces the node at `slot` with a new block in the same list
    /// position (what splitting a free block does: the remainder
    /// inherits the original's links).
    pub fn replace(&mut self, slot: Slot, addr: Address, size: u32) {
        let old = self.nodes[slot as usize].addr;
        if old != word(addr) {
            let removed = self.index_remove(unword(old));
            debug_assert_eq!(removed, slot);
            self.index_insert(addr, slot);
            self.nodes[slot as usize].addr = word(addr);
        }
        self.nodes[slot as usize].size = size;
    }

    /// Slot preceding `slot` on its list, if any.
    #[must_use]
    pub fn prev(&self, slot: Slot) -> Option<Slot> {
        let p = self.nodes[slot as usize].prev;
        (p != NIL).then_some(p)
    }

    /// `(addr, size)` mirrored at `slot`.
    #[must_use]
    pub fn node(&self, slot: Slot) -> (Address, u32) {
        let n = self.nodes[slot as usize];
        (unword(n.addr), n.size)
    }

    /// First slot of list `k`, if any.
    #[must_use]
    pub fn head(&self, k: usize) -> Option<Slot> {
        let h = self.heads[k];
        (h != NIL).then_some(h)
    }

    /// Slot following `slot` on its list, if any.
    #[must_use]
    pub fn next(&self, slot: Slot) -> Option<Slot> {
        let n = self.nodes[slot as usize].next;
        (n != NIL).then_some(n)
    }

    /// `(raw addr, size, next)` of the member at `slot` in one slab
    /// access, for walks that carry the whole node from step to step
    /// (raw word form, since walks emit raw-address pairs anyway).
    #[must_use]
    pub fn node_with_next(&self, slot: Slot) -> (u32, u32, Option<Slot>) {
        let n = self.nodes[slot as usize];
        (n.addr, n.size, (n.next != NIL).then_some(n.next))
    }
}

/// Number of leaf words (and thus `64 ×` the class capacity) in a
/// [`ClassBitmap`].
const LEAVES: usize = 64;

/// Two-level occupancy bitmap over up to 4096 size classes.
///
/// Bit `c` is set when class `c` is occupied. The summary word has bit
/// `w` set when leaf word `w` is non-zero, so [`ClassBitmap::first_at_least`]
/// is at most three `trailing_zeros` scans — the "Fast Bitmap Fit"
/// find-first-set structure.
#[derive(Debug)]
pub struct ClassBitmap {
    summary: u64,
    leaves: [u64; LEAVES],
}

impl Default for ClassBitmap {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassBitmap {
    /// An all-empty bitmap.
    #[must_use]
    pub fn new() -> Self {
        ClassBitmap { summary: 0, leaves: [0; LEAVES] }
    }

    /// Marks class `c` occupied.
    #[inline]
    pub fn set(&mut self, c: usize) {
        debug_assert!(c < LEAVES * 64);
        self.leaves[c / 64] |= 1u64 << (c % 64);
        self.summary |= 1u64 << (c / 64);
    }

    /// Marks class `c` empty.
    #[inline]
    pub fn clear(&mut self, c: usize) {
        debug_assert!(c < LEAVES * 64);
        self.leaves[c / 64] &= !(1u64 << (c % 64));
        if self.leaves[c / 64] == 0 {
            self.summary &= !(1u64 << (c / 64));
        }
    }

    /// Whether class `c` is occupied.
    #[inline]
    #[must_use]
    pub fn is_set(&self, c: usize) -> bool {
        self.leaves[c / 64] & (1u64 << (c % 64)) != 0
    }

    /// The smallest occupied class `>= c`, if any, via find-first-set
    /// over the leaf word holding `c` and then the summary word.
    #[inline]
    #[must_use]
    pub fn first_at_least(&self, c: usize) -> Option<usize> {
        debug_assert!(c < LEAVES * 64);
        let (w, b) = (c / 64, c % 64);
        let masked = self.leaves[w] & (!0u64 << b);
        if masked != 0 {
            return Some(w * 64 + masked.trailing_zeros() as usize);
        }
        let higher = if w + 1 < 64 { self.summary & (!0u64 << (w + 1)) } else { 0 };
        if higher == 0 {
            return None;
        }
        let w2 = higher.trailing_zeros() as usize;
        let leaf = self.leaves[w2];
        debug_assert_ne!(leaf, 0, "summary bit set for empty leaf");
        Some(w2 * 64 + leaf.trailing_zeros() as usize)
    }
}

/// Occupancy index over size classes: a [`ClassBitmap`] plus per-class
/// counts, so a bit clears exactly when the *last* block of its class
/// leaves. The search allocators keep one keyed by floor-log2 block
/// size and probe it (`alloc.bitmap_probe`) before walking.
#[derive(Debug)]
pub struct ClassIndex {
    bitmap: ClassBitmap,
    counts: Vec<u32>,
}

impl ClassIndex {
    /// An empty index over `classes` size classes.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        ClassIndex { bitmap: ClassBitmap::new(), counts: vec![0; classes] }
    }

    /// Records one more block of class `c`.
    #[inline]
    pub fn add(&mut self, c: usize) {
        self.counts[c] += 1;
        self.bitmap.set(c);
    }

    /// Records one fewer block of class `c`.
    #[inline]
    pub fn remove(&mut self, c: usize) {
        debug_assert!(self.counts[c] > 0, "class {c} count underflow");
        self.counts[c] -= 1;
        if self.counts[c] == 0 {
            self.bitmap.clear(c);
        }
    }

    /// The smallest occupied class `>= c`, if any.
    #[inline]
    #[must_use]
    pub fn first_at_least(&self, c: usize) -> Option<usize> {
        self.bitmap.first_at_least(c)
    }
}

/// A position on a sentinel-headed circular list: the sentinel itself,
/// or a member block's slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pos {
    /// The list's sentinel head.
    Head,
    /// A member node, by slab slot.
    Node(Slot),
}

/// Shadow of the in-heap circular doubly-linked freelists built by
/// [`crate::layout::list`]: one sentinel per list in the allocator's
/// static area, member links threaded through free-block payloads.
///
/// Every operation *emits exactly the reference sequence* of the
/// corresponding `layout::list` helper — same loads (served via
/// [`sim_mem::MemCtx::shadow_load`] from the slab instead of the heap
/// image), same write-through stores, same `ops` charges — while the
/// slab keeps membership, order, and block sizes host-side for
/// cache-dense walks and O(1) unlink. A two-level occupancy bitmap
/// tracks which lists are non-empty.
#[derive(Debug)]
pub struct TaggedList {
    inner: ShadowList,
    sentinels: Vec<Address>,
    occupancy: ClassBitmap,
}

impl TaggedList {
    /// A shadow over `lists` not-yet-initialized sentinel lists.
    #[must_use]
    pub fn new(lists: usize) -> Self {
        TaggedList {
            inner: ShadowList::new(lists),
            sentinels: vec![Address::NULL; lists],
            occupancy: ClassBitmap::new(),
        }
    }

    /// Mirrors `layout::list::init_head`: registers `sentinel` as list
    /// `k`'s head and emits its two self-link stores (write-through via
    /// the allocator's shared metadata mirror `m`).
    pub fn init_head(
        &mut self,
        ctx: &mut MemCtx<'_>,
        m: &mut WordMirror,
        k: usize,
        sentinel: Address,
    ) {
        self.sentinels[k] = sentinel;
        let w = word(sentinel);
        m.store(ctx, sentinel + NEXT_OFF, w);
        m.store(ctx, sentinel + PREV_OFF, w);
    }

    /// The sentinel address of list `k`.
    #[must_use]
    pub fn sentinel(&self, k: usize) -> Address {
        self.sentinels[k]
    }

    /// The heap address a position denotes on list `k`.
    #[must_use]
    pub fn addr(&self, k: usize, pos: Pos) -> Address {
        match pos {
            Pos::Head => self.sentinels[k],
            Pos::Node(s) => self.inner.node(s).0,
        }
    }

    /// The position denoting heap address `a` on list `k`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is neither the sentinel nor a current member.
    #[must_use]
    pub fn pos_of(&self, k: usize, a: Address) -> Pos {
        if a == self.sentinels[k] {
            Pos::Head
        } else {
            Pos::Node(self.inner.slot_of(a).expect("address is on the shadowed list"))
        }
    }

    /// `(addr, size)` of the member at `slot`.
    #[must_use]
    pub fn node(&self, slot: Slot) -> (Address, u32) {
        self.inner.node(slot)
    }

    /// Updates the cached size of the member at `slot`.
    pub fn set_size(&mut self, slot: Slot, size: u32) {
        self.inner.set_size(slot, size);
    }

    /// The slab slot of member block `a`, if it is on any list.
    #[must_use]
    pub fn slot_of(&self, a: Address) -> Option<Slot> {
        self.inner.slot_of(a)
    }

    /// Whether list `k` has no members (pure host query, no emission).
    #[must_use]
    pub fn list_is_empty(&self, k: usize) -> bool {
        self.inner.list_is_empty(k)
    }

    /// The first non-empty list `>= k`, if any: one find-first-set scan
    /// of the occupancy bitmap.
    #[must_use]
    pub fn first_nonempty_at_least(&self, k: usize) -> Option<usize> {
        self.occupancy.first_at_least(k)
    }

    fn note_membership(&mut self, k: usize) {
        if self.inner.list_is_empty(k) {
            self.occupancy.clear(k);
        } else {
            self.occupancy.set(k);
        }
    }

    /// Host-only successor of `pos` on list `k`: the position
    /// [`Self::next`] would return, with no emission or charge. Walks
    /// that defer their trace to a [`sim_mem::MemCtx::shadow_load_burst`]
    /// step with this and collect the link loads via
    /// [`Self::link_load`].
    #[must_use]
    pub fn peek_next(&self, k: usize, pos: Pos) -> Pos {
        match pos {
            Pos::Head => self.inner.head(k).map_or(Pos::Head, Pos::Node),
            Pos::Node(s) => self.inner.next(s).map_or(Pos::Head, Pos::Node),
        }
    }

    /// The `(address, value)` of the successor-link load [`Self::next`]
    /// emits stepping from `pos` to `succ` on list `k`.
    #[must_use]
    pub fn link_load(&self, k: usize, pos: Pos, succ: Pos) -> (Address, u32) {
        (self.addr(k, pos) + NEXT_OFF, word(self.addr(k, succ)))
    }

    /// Pass one of a two-pass first-fit walk: iterates list `k`
    /// host-only over the slab from `start`, appending to `out` exactly
    /// the loads the traced walk performs — `header(size)` at each
    /// visited member's address, the successor link word at each hop —
    /// as `(raw address, value)` pairs, until `fits(size)` accepts a
    /// member or the walk returns to `start`. Returns the accepting
    /// slot plus the `(visits, hops)` counts; the caller replays `out`
    /// through [`sim_mem::MemCtx::shadow_load_burst`] and charges the
    /// walk's `ops` in bulk. Each slab node is fetched once per step
    /// (carried, with its successor slot, into the next iteration),
    /// which is the entire point: the walk runs over the cache-dense
    /// slab instead of pointer-chasing the heap image.
    #[must_use]
    pub fn walk_first_fit(
        &self,
        k: usize,
        start: Pos,
        out: &mut Vec<(u32, u32)>,
        header: impl Fn(u32) -> u32,
        mut fits: impl FnMut(u32) -> bool,
    ) -> (Option<Slot>, u64, u64) {
        let next_off = u32::try_from(NEXT_OFF).expect("link offset fits in a word");
        let load = |pos: Pos| match pos {
            Pos::Head => {
                (word(self.sentinels[k]), 0, self.inner.head(k).map_or(Pos::Head, Pos::Node))
            }
            Pos::Node(s) => {
                let (addr, size, next) = self.inner.node_with_next(s);
                (addr, size, next.map_or(Pos::Head, Pos::Node))
            }
        };
        let (mut visits, mut hops) = (0u64, 0u64);
        let mut pos = start;
        let (mut addr, mut size, mut succ) = load(start);
        let hit = loop {
            if let Pos::Node(slot) = pos {
                out.push((addr, header(size)));
                visits += 1;
                if fits(size) {
                    break Some(slot);
                }
            }
            let (succ_addr, succ_size, succ_next) = load(succ);
            out.push((addr + next_off, succ_addr));
            hops += 1;
            pos = succ;
            (addr, size, succ) = (succ_addr, succ_size, succ_next);
            if pos == start {
                break None;
            }
        };
        (hit, visits, hops)
    }

    /// Mirrors `layout::list::next`: emits the successor-link load and
    /// returns the successor position.
    pub fn next(&self, ctx: &mut MemCtx<'_>, k: usize, pos: Pos) -> Pos {
        let succ = self.peek_next(k, pos);
        let (addr, value) = self.link_load(k, pos, succ);
        ctx.shadow_load(addr, value);
        succ
    }

    /// Mirrors `layout::list::insert_after`: emits one link load and
    /// four link stores plus `ops(2)`, and records the new member.
    pub fn insert_after(
        &mut self,
        ctx: &mut MemCtx<'_>,
        m: &mut WordMirror,
        k: usize,
        pos: Pos,
        new: Address,
        size: u32,
    ) {
        let succ = self.next(ctx, k, pos);
        let succ_addr = self.addr(k, succ);
        let pos_addr = self.addr(k, pos);
        m.store(ctx, new + NEXT_OFF, word(succ_addr));
        m.store(ctx, new + PREV_OFF, word(pos_addr));
        m.store(ctx, pos_addr + NEXT_OFF, word(new));
        m.store(ctx, succ_addr + PREV_OFF, word(new));
        ctx.ops(2);
        match pos {
            Pos::Head => self.inner.push_front(k, new, size),
            Pos::Node(s) => self.inner.insert_after(k, s, new, size),
        }
        self.occupancy.set(k);
    }

    /// Mirrors `layout::list::unlink`: emits both link loads and the
    /// two splice stores plus `ops(2)`, removes the member, and returns
    /// its `(addr, size)`.
    pub fn unlink(
        &mut self,
        ctx: &mut MemCtx<'_>,
        m: &mut WordMirror,
        k: usize,
        slot: Slot,
    ) -> (Address, u32) {
        let node_addr = self.inner.node(slot).0;
        let succ = self.inner.next(slot).map_or(Pos::Head, Pos::Node);
        let pred = self.inner.prev(slot).map_or(Pos::Head, Pos::Node);
        let succ_addr = self.addr(k, succ);
        let pred_addr = self.addr(k, pred);
        ctx.shadow_load(node_addr + NEXT_OFF, word(succ_addr));
        ctx.shadow_load(node_addr + PREV_OFF, word(pred_addr));
        m.store(ctx, pred_addr + NEXT_OFF, word(succ_addr));
        m.store(ctx, succ_addr + PREV_OFF, word(pred_addr));
        ctx.ops(2);
        let out = self.inner.unlink(k, slot);
        self.note_membership(k);
        out
    }

    /// Mirrors `layout::list::replace`: emits the old member's two link
    /// loads and four splice stores plus `ops(2)`, and re-keys the slab
    /// node to the new block in place.
    pub fn replace(
        &mut self,
        ctx: &mut MemCtx<'_>,
        m: &mut WordMirror,
        k: usize,
        slot: Slot,
        new: Address,
        size: u32,
    ) {
        let old_addr = self.inner.node(slot).0;
        let succ = self.inner.next(slot).map_or(Pos::Head, Pos::Node);
        let pred = self.inner.prev(slot).map_or(Pos::Head, Pos::Node);
        let succ_addr = self.addr(k, succ);
        let pred_addr = self.addr(k, pred);
        ctx.shadow_load(old_addr + NEXT_OFF, word(succ_addr));
        ctx.shadow_load(old_addr + PREV_OFF, word(pred_addr));
        m.store(ctx, new + NEXT_OFF, word(succ_addr));
        m.store(ctx, new + PREV_OFF, word(pred_addr));
        m.store(ctx, pred_addr + NEXT_OFF, word(new));
        m.store(ctx, succ_addr + PREV_OFF, word(new));
        ctx.ops(2);
        self.inner.replace(slot, new, size);
    }
}

#[inline]
fn word(a: Address) -> u32 {
    u32::try_from(a.raw()).expect("simulated addresses fit in a word")
}

/// Inverse of [`word`]: widens a raw heap word back to an [`Address`].
#[inline]
fn unword(w: u32) -> Address {
    Address::new(u64::from(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{HeapImage, InstrCounter, MemCtx, VecSink};

    #[test]
    fn word_mirror_tracks_stores_and_defaults_to_zero() {
        let mut heap = HeapImage::new();
        let mut sink = VecSink::new();
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        let base = ctx.sbrk(64).unwrap();

        let mut mirror = WordMirror::new();
        assert_eq!(mirror.get(base), 0);
        mirror.store(&mut ctx, base + 8, 0xdead_beef);
        assert_eq!(mirror.get(base + 8), 0xdead_beef);
        // A traced load returns the mirror value; debug builds also
        // assert it matches the heap image (which store wrote through).
        assert_eq!(mirror.load(&mut ctx, base + 8), 0xdead_beef);
        assert_eq!(mirror.load(&mut ctx, base), 0);
    }

    #[test]
    fn shadow_list_mirrors_order_and_unlinks_in_place() {
        let a = |n: u64| Address::new(HEAP_BASE + n * 16);
        let mut l = ShadowList::new(2);
        assert!(l.is_empty());
        l.push_front(0, a(1), 16);
        l.push_front(0, a(2), 24);
        l.push_back(0, a(3), 32);
        l.push_back(1, a(9), 48);
        // List 0 order: a2, a1, a3.
        let h = l.head(0).unwrap();
        assert_eq!(l.node(h), (a(2), 24));
        let s1 = l.next(h).unwrap();
        assert_eq!(l.node(s1), (a(1), 16));
        let s3 = l.next(s1).unwrap();
        assert_eq!(l.node(s3), (a(3), 32));
        assert!(l.next(s3).is_none());

        // O(1) unlink from the middle.
        assert_eq!(l.unlink(0, s1), (a(1), 16));
        let h = l.head(0).unwrap();
        assert_eq!(l.node(h).0, a(2));
        assert_eq!(l.node(l.next(h).unwrap()).0, a(3));

        // Address-keyed unlink.
        assert_eq!(l.unlink_addr(0, a(2)), Some(24));
        assert_eq!(l.unlink_addr(0, a(7)), None);
        assert_eq!(l.unlink_addr(1, a(9)), Some(48));
        assert!(l.list_is_empty(1));
        assert_eq!(l.len(), 1);

        // insert_after keeps order and tail bookkeeping.
        let h = l.head(0).unwrap();
        l.insert_after(0, h, a(5), 64);
        let s5 = l.next(h).unwrap();
        assert_eq!(l.node(s5), (a(5), 64));
        l.set_size(s5, 72);
        assert_eq!(l.node(s5).1, 72);
        assert!(l.next(s5).is_none(), "inserted after old tail becomes tail");
    }

    #[test]
    fn tagged_list_emits_exactly_what_layout_list_does() {
        use crate::layout::list;

        // Drive the same op sequence through layout::list on one heap
        // and TaggedList on another; streams, instruction counts, and
        // final heap bytes must match word for word. shadow_load's
        // debug assertions additionally check slab/heap coherence on
        // every load.
        fn setup(heap: &mut HeapImage) -> (Address, [Address; 3]) {
            let head = heap.sbrk(list::SENTINEL_BYTES).unwrap();
            let a = heap.sbrk(16).unwrap();
            let b = heap.sbrk(16).unwrap();
            let c = heap.sbrk(16).unwrap();
            (head, [a, b, c])
        }

        let mut heap_ref = HeapImage::new();
        let mut sink_ref = VecSink::new();
        let mut instr_ref = InstrCounter::new();
        let (head, [a, b, c]) = setup(&mut heap_ref);
        {
            let ctx = &mut MemCtx::new(&mut heap_ref, &mut sink_ref, &mut instr_ref);
            list::init_head(ctx, head);
            list::insert_after(ctx, head, a);
            list::insert_after(ctx, head, b);
            list::insert_after(ctx, b, c);
            assert_eq!(list::next(ctx, head), b);
            list::unlink(ctx, c);
            list::replace(ctx, b, c);
            assert_eq!(list::next(ctx, head), c);
            assert_eq!(list::next(ctx, c), a);
            list::unlink(ctx, a);
            list::unlink(ctx, c);
            assert!(list::is_empty(ctx, head));
        }

        let mut heap_new = HeapImage::new();
        let mut sink_new = VecSink::new();
        let mut instr_new = InstrCounter::new();
        let (head2, [a2, b2, c2]) = setup(&mut heap_new);
        assert_eq!((head, a, b, c), (head2, a2, b2, c2));
        {
            let ctx = &mut MemCtx::new(&mut heap_new, &mut sink_new, &mut instr_new);
            let m = &mut WordMirror::new();
            let mut l = TaggedList::new(1);
            l.init_head(ctx, m, 0, head);
            l.insert_after(ctx, m, 0, Pos::Head, a, 16);
            l.insert_after(ctx, m, 0, Pos::Head, b, 16);
            let sb = l.slot_of(b).unwrap();
            l.insert_after(ctx, m, 0, Pos::Node(sb), c, 16);
            assert_eq!(l.next(ctx, 0, Pos::Head), Pos::Node(sb));
            let sc = l.slot_of(c).unwrap();
            l.unlink(ctx, m, 0, sc);
            l.replace(ctx, m, 0, sb, c, 16);
            let sc = l.slot_of(c).unwrap();
            assert_eq!(l.next(ctx, 0, Pos::Head), Pos::Node(sc));
            let sa = l.slot_of(a).unwrap();
            assert_eq!(l.next(ctx, 0, Pos::Node(sc)), Pos::Node(sa));
            l.unlink(ctx, m, 0, sa);
            l.unlink(ctx, m, 0, sc);
            // Mirror list::is_empty — one sentinel next-link load.
            assert_eq!(l.next(ctx, 0, Pos::Head), Pos::Head);
            assert!(l.list_is_empty(0));
            assert_eq!(l.first_nonempty_at_least(0), None);
        }

        assert_eq!(sink_new.refs, sink_ref.refs, "emitted streams diverge");
        assert_eq!(instr_new, instr_ref, "instruction charges diverge");
        let words = (heap_ref.brk() - heap_ref.base()) / 4;
        for i in 0..words {
            let at = heap_ref.base() + i * 4;
            assert_eq!(heap_new.read_u32(at), heap_ref.read_u32(at), "heap diverges at {at}");
        }
    }

    #[test]
    fn class_index_tracks_last_leaver() {
        let mut ix = ClassIndex::new(128);
        ix.add(5);
        ix.add(5);
        ix.add(64);
        assert_eq!(ix.first_at_least(0), Some(5));
        ix.remove(5);
        assert_eq!(ix.first_at_least(0), Some(5), "one block of class 5 remains");
        ix.remove(5);
        assert_eq!(ix.first_at_least(0), Some(64));
        ix.remove(64);
        assert_eq!(ix.first_at_least(0), None);
    }

    #[test]
    fn class_bitmap_finds_first_set_across_words() {
        let mut b = ClassBitmap::new();
        assert_eq!(b.first_at_least(0), None);
        b.set(3);
        b.set(70);
        b.set(4095);
        assert!(b.is_set(3) && b.is_set(70) && b.is_set(4095));
        assert_eq!(b.first_at_least(0), Some(3));
        assert_eq!(b.first_at_least(3), Some(3));
        assert_eq!(b.first_at_least(4), Some(70));
        assert_eq!(b.first_at_least(63), Some(70));
        assert_eq!(b.first_at_least(64), Some(70));
        assert_eq!(b.first_at_least(71), Some(4095));
        b.clear(70);
        assert!(!b.is_set(70));
        assert_eq!(b.first_at_least(4), Some(4095));
        b.clear(3);
        b.clear(4095);
        assert_eq!(b.first_at_least(0), None);
    }
}
