//! The five dynamic-storage-allocation (DSA) algorithms measured by
//! Grunwald, Zorn & Henderson in *Improving the Cache Locality of Memory
//! Allocation* (PLDI 1993), plus the synthesized allocator their
//! conclusions call for.
//!
//! Every allocator manages blocks inside a [`sim_mem::HeapImage`] and keeps
//! its metadata (freelist links, boundary tags, chunk descriptors) *in* the
//! simulated heap, at the same offsets the original C implementations used.
//! All metadata accesses go through [`sim_mem::MemCtx`], so each allocator
//! emits an address-faithful reference trace and per-phase instruction
//! counts as a side effect of simply running.
//!
//! The implementations:
//!
//! | Type | Paper name | Strategy |
//! |---|---|---|
//! | [`FirstFit`] | `FIRSTFIT` | Knuth first fit: roving pointer, boundary tags, coalescing |
//! | [`GnuGxx`] | `GNU G++` | Lea: size-segregated doubly-linked freelists, boundary tags, coalescing |
//! | [`Bsd`] | `BSD` | Kingsley: power-of-two buckets, no coalescing, no search |
//! | [`GnuLocal`] | `GNU LOCAL` | Haertel: page chunks, localized chunk headers, no per-object tags |
//! | [`QuickFit`] | `QUICKFIT` | Weinstock & Wulf: exact-size fast lists (4–32 B) over a general allocator |
//! | [`Custom`] | §4.4 design | Profile-driven size classes, chunked, tag-free (the paper's recommendation) |
//!
//! # Example
//!
//! ```
//! use allocators::{Allocator, Bsd};
//! use sim_mem::{HeapImage, MemCtx, NullSink, InstrCounter};
//!
//! # fn main() -> Result<(), allocators::AllocError> {
//! let mut heap = HeapImage::new();
//! let mut sink = NullSink;
//! let mut instrs = InstrCounter::new();
//! let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
//! let mut bsd = Bsd::new(&mut ctx)?;
//! let p = bsd.malloc(24, &mut ctx)?;
//! bsd.free(p, &mut ctx)?;
//! let q = bsd.malloc(24, &mut ctx)?;
//! assert_eq!(p, q, "BSD recycles the freed block immediately");
//! # Ok(())
//! # }
//! ```

pub mod best_fit;
pub mod bsd;
pub mod buddy;
pub mod chunked;
pub mod custom;
pub mod first_fit;
pub mod gnu_gxx;
pub mod gnu_local;
pub mod layout;
pub mod predictive;
pub mod quick_fit;
pub mod reference;
pub mod shadow;
pub mod size_map;
pub mod stats;
pub mod verify;

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_mem::{Address, MemCtx, OomError};

pub use best_fit::BestFit;
pub use bsd::{Bsd, BsdConfig};
pub use buddy::Buddy;
pub use custom::Custom;
pub use first_fit::FirstFit;
pub use gnu_gxx::GnuGxx;
pub use gnu_local::GnuLocal;
pub use predictive::{Predictive, PredictiveConfig};
pub use quick_fit::{QuickFit, QuickFitConfig};
pub use size_map::{SizeMap, SizeProfile};
pub use stats::AllocStats;

/// Errors surfaced by allocator operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The simulated heap limit was exceeded.
    Oom(OomError),
    /// A `free` was passed an address that does not denote a live block.
    InvalidFree(Address),
    /// A request exceeded what the allocator supports.
    Unsupported(u32),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Oom(e) => write!(f, "allocation failed: {e}"),
            AllocError::InvalidFree(a) => write!(f, "invalid free of {a}"),
            AllocError::Unsupported(n) => write!(f, "unsupported request size {n}"),
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::Oom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OomError> for AllocError {
    fn from(e: OomError) -> Self {
        AllocError::Oom(e)
    }
}

/// A dynamic storage allocator operating on the simulated heap.
///
/// Implementations update their [`AllocStats`] on every operation. The
/// caller (the experiment engine) is responsible for setting the
/// instruction-accounting phase on the [`MemCtx`] before invoking `malloc`
/// or `free`.
pub trait Allocator {
    /// Short identifier matching the paper ("FirstFit", "BSD", ...).
    fn name(&self) -> &'static str;

    /// Allocates `size` bytes and returns the payload address.
    ///
    /// A `size` of zero is treated as the smallest supported request, as C
    /// `malloc(0)` conventionally returns a unique pointer.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the heap limit is exhausted.
    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError>;

    /// Allocates `size` bytes for the given allocation *call site*.
    ///
    /// C exposes the call site as `malloc`'s return address; Barrett &
    /// Zorn's lifetime predictors (the paper's §5.1 future work) key
    /// their predictions on it. The default implementation ignores the
    /// site; [`predictive::Predictive`] overrides it.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the heap limit is exhausted.
    fn malloc_at(
        &mut self,
        size: u32,
        site: u32,
        ctx: &mut MemCtx<'_>,
    ) -> Result<Address, AllocError> {
        let _ = site;
        self.malloc(size, ctx)
    }

    /// Releases the block whose payload starts at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidFree`] when the implementation can
    /// detect that `ptr` is not a live allocation (tag-carrying allocators
    /// check the allocated bit; others detect what their metadata allows).
    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError>;

    /// Allocation statistics accumulated so far.
    fn stats(&self) -> &AllocStats;
}

/// The allocator designs compared in the paper, as buildable identifiers.
///
/// [`Custom`] is not included because it requires a size profile; build it
/// directly via [`Custom::from_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// Knuth/Moraes first fit.
    FirstFit,
    /// Lea's segregated first fit.
    GnuGxx,
    /// Kingsley's power-of-two segregated storage.
    Bsd,
    /// Haertel's page-oriented hybrid.
    GnuLocal,
    /// Weinstock & Wulf's exact-size fast lists.
    QuickFit,
}

impl AllocatorKind {
    /// The five allocators, in the order the paper's figures present them.
    pub const ALL: [AllocatorKind; 5] = [
        AllocatorKind::FirstFit,
        AllocatorKind::QuickFit,
        AllocatorKind::GnuGxx,
        AllocatorKind::Bsd,
        AllocatorKind::GnuLocal,
    ];

    /// The paper's display name.
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::FirstFit => "FirstFit",
            AllocatorKind::GnuGxx => "GNU G++",
            AllocatorKind::Bsd => "BSD",
            AllocatorKind::GnuLocal => "GNU local",
            AllocatorKind::QuickFit => "QuickFit",
        }
    }

    /// Builds a fresh allocator of this kind over the given context.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError::Oom`] if the initial metadata area cannot
    /// be reserved.
    pub fn build(self, ctx: &mut MemCtx<'_>) -> Result<Box<dyn Allocator>, AllocError> {
        Ok(match self {
            AllocatorKind::FirstFit => Box::new(FirstFit::new(ctx)?),
            AllocatorKind::GnuGxx => Box::new(GnuGxx::new(ctx)?),
            AllocatorKind::Bsd => Box::new(Bsd::new(ctx)?),
            AllocatorKind::GnuLocal => Box::new(GnuLocal::new(ctx)?),
            AllocatorKind::QuickFit => Box::new(QuickFit::new(ctx)?),
        })
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_match_paper() {
        assert_eq!(AllocatorKind::FirstFit.label(), "FirstFit");
        assert_eq!(AllocatorKind::GnuGxx.to_string(), "GNU G++");
        assert_eq!(AllocatorKind::ALL.len(), 5);
    }

    #[test]
    fn alloc_error_displays_and_sources() {
        let e = AllocError::InvalidFree(Address::new(0x10));
        assert!(e.to_string().contains("invalid free"));
        assert!(e.source().is_none());
        let oom = OomError { requested: 8, in_use: 0, limit: 4 };
        let e = AllocError::from(oom);
        assert!(e.source().is_some());
    }
}
