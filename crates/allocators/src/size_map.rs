//! Size-class policy: profiles, bounded-fragmentation classes, and the
//! size-mapping array of the paper's Figure 9.
//!
//! §4.4 of the paper argues that "the best allocator strikes a balance
//! between too few and too many size classes" and lists three ways to
//! choose them: anecdote (QUICKFIT), bounded internal fragmentation
//! ("if 25% or less internal fragmentation is tolerated, then objects of
//! size 12–16 bytes are rounded to 16"), and *empirical measurement of a
//! particular program's behaviour*. It then observes that "arbitrary
//! mappings can be implemented efficiently using a size-mapping array"
//! (Figure 9) — an array indexed by request size yielding the size class.
//!
//! [`SizeProfile`] collects the empirical measurements, [`SizeMap`] holds
//! the resulting class list and request→class mapping, and
//! [`SizeMap::write_to_heap`]/[`SizeMap::lookup`] realize Figure 9's
//! array inside the simulated heap so lookups appear in the reference
//! trace.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sim_mem::{Address, MemCtx, OomError};

/// Largest request size a [`SizeMap`] can map (half a page: larger
/// requests take whole chunks).
pub const MAP_MAX: u32 = crate::chunked::FRAG_MAX;

/// Smallest permissible class (fragments must hold two links).
pub const MIN_CLASS: u32 = 8;

/// An empirical histogram of allocation request sizes.
///
/// # Example
///
/// ```
/// use allocators::SizeProfile;
/// let mut p = SizeProfile::new();
/// p.record(24);
/// p.record(24);
/// p.record(100);
/// assert_eq!(p.count(24), 2);
/// assert_eq!(p.total(), 3);
/// assert_eq!(p.top_sizes(1), vec![24]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeProfile {
    counts: HashMap<u32, u64>,
}

impl SizeProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one allocation request of `size` bytes.
    pub fn record(&mut self, size: u32) {
        *self.counts.entry(size).or_insert(0) += 1;
    }

    /// Number of requests recorded for exactly `size`.
    pub fn count(&self, size: u32) -> u64 {
        self.counts.get(&size).copied().unwrap_or(0)
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The `n` most frequent request sizes, most frequent first; ties
    /// break toward smaller sizes for determinism.
    pub fn top_sizes(&self, n: usize) -> Vec<u32> {
        let mut entries: Vec<(u32, u64)> = self.counts.iter().map(|(&s, &c)| (s, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.into_iter().take(n).map(|(s, _)| s).collect()
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &SizeProfile) {
        for (&s, &c) in &other.counts {
            *self.counts.entry(s).or_insert(0) += c;
        }
    }
}

impl Extend<u32> for SizeProfile {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for s in iter {
            self.record(s);
        }
    }
}

impl FromIterator<u32> for SizeProfile {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut p = SizeProfile::new();
        p.extend(iter);
        p
    }
}

/// A request-size → size-class mapping with an explicit class list:
/// Figure 9's "size-mapping array".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeMap {
    /// Strictly increasing class sizes; the last equals the map maximum.
    classes: Vec<u32>,
    /// `map[g]` = class index for requests in word-granule `g`.
    map: Vec<u32>,
}

impl SizeMap {
    /// Builds a map from an explicit class list. Classes are rounded to
    /// word multiples, clamped to `[MIN_CLASS, MAP_MAX]`, deduplicated,
    /// and a `MAP_MAX` ceiling class is added so every mappable size has
    /// a class.
    pub fn from_classes(classes: impl IntoIterator<Item = u32>) -> Self {
        let mut cs: Vec<u32> =
            classes.into_iter().map(|s| s.clamp(MIN_CLASS, MAP_MAX).div_ceil(4) * 4).collect();
        cs.push(MAP_MAX);
        cs.sort_unstable();
        cs.dedup();
        let granules = (MAP_MAX / 4) as usize;
        let mut map = vec![0u32; granules];
        for (g, slot) in map.iter_mut().enumerate() {
            let size = (g as u32 + 1) * 4;
            let class = cs.partition_point(|&c| c < size);
            *slot = class as u32;
        }
        SizeMap { classes: cs, map }
    }

    /// The bounded-internal-fragmentation policy: geometric classes such
    /// that no request wastes more than `bound` of its class (e.g. 0.25
    /// for the paper's 25% example). Waste is measured against the
    /// word-rounded request, since no word-aligned allocator can grant
    /// less than a whole word.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < bound < 1.0`.
    pub fn bounded_fragmentation(bound: f64) -> Self {
        assert!(bound > 0.0 && bound < 1.0, "bound must be a fraction in (0, 1)");
        let mut classes = Vec::new();
        let mut c = MIN_CLASS;
        while c < MAP_MAX {
            classes.push(c);
            // Largest next class whose smallest-mapped word-rounded
            // request (c + 4) still wastes at most `bound`.
            let next = ((f64::from(c) + 4.0) / (1.0 - bound)).floor() as u32;
            let next = (next / 4) * 4;
            c = next.max(c + 4);
        }
        SizeMap::from_classes(classes)
    }

    /// The paper's synthesis policy: exact classes for the `max_exact`
    /// most frequent profiled sizes, backed by bounded-fragmentation
    /// classes (`bound`) for everything else.
    pub fn from_profile(profile: &SizeProfile, max_exact: usize, bound: f64) -> Self {
        let mut classes = SizeMap::bounded_fragmentation(bound).classes;
        classes.extend(
            profile
                .top_sizes(max_exact)
                .into_iter()
                .filter(|&s| s <= MAP_MAX)
                .map(|s| s.max(MIN_CLASS)),
        );
        SizeMap::from_classes(classes)
    }

    /// The class sizes, strictly increasing.
    pub fn class_sizes(&self) -> &[u32] {
        &self.classes
    }

    /// Largest mappable request.
    pub fn max_mapped(&self) -> u32 {
        MAP_MAX
    }

    /// The class index for `size`, or `None` if the request is larger
    /// than the map covers. Pure computation (untraced); allocators use
    /// [`Self::lookup`].
    pub fn class_for(&self, size: u32) -> Option<usize> {
        if size > MAP_MAX {
            return None;
        }
        let g = (size.max(1) as usize - 1) / 4;
        Some(self.map[g] as usize)
    }

    /// The class size serving `size`, or `None` if unmapped.
    pub fn rounded(&self, size: u32) -> Option<u32> {
        self.class_for(size).map(|c| self.classes[c])
    }

    /// Writes the mapping array into the heap (one word per granule) and
    /// returns its base address, enabling traced lookups.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if the heap cannot hold the array.
    pub fn write_to_heap(&self, ctx: &mut MemCtx<'_>) -> Result<Address, OomError> {
        let base = ctx.sbrk(self.map.len() as u64 * 4)?;
        for (g, &class) in self.map.iter().enumerate() {
            ctx.store(base + g as u64 * 4, class);
        }
        Ok(base)
    }

    /// Figure 9's traced lookup: one load of the in-heap array plus the
    /// indexing arithmetic.
    pub fn lookup(base: Address, size: u32, ctx: &mut MemCtx<'_>) -> usize {
        debug_assert!(size <= MAP_MAX);
        let g = (size.max(1) as u64 - 1) / 4;
        ctx.ops(3);
        ctx.load(base + g * 4) as usize
    }

    /// [`Self::lookup`] with the class value served from this map's own
    /// table: identical emission and charges, no heap-image read. Sound
    /// because the in-heap array is written once by
    /// [`Self::write_to_heap`] and never modified.
    pub fn lookup_shadow(&self, base: Address, size: u32, ctx: &mut MemCtx<'_>) -> usize {
        debug_assert!(size <= MAP_MAX);
        let g = (size.max(1) as u64 - 1) / 4;
        ctx.ops(3);
        ctx.shadow_load(base + g * 4, self.map[g as usize]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    #[test]
    fn from_classes_sorts_dedupes_and_caps() {
        let m = SizeMap::from_classes([24, 8, 24, 100]);
        assert_eq!(m.class_sizes(), &[8, 24, 100, MAP_MAX]);
        assert_eq!(m.rounded(8), Some(8));
        assert_eq!(m.rounded(9), Some(24));
        assert_eq!(m.rounded(24), Some(24));
        assert_eq!(m.rounded(25), Some(100));
        assert_eq!(m.rounded(101), Some(MAP_MAX));
        assert_eq!(m.rounded(MAP_MAX), Some(MAP_MAX));
        assert_eq!(m.rounded(MAP_MAX + 1), None);
    }

    #[test]
    fn classes_are_word_multiples_with_floor() {
        let m = SizeMap::from_classes([5, 13, 2]);
        for &c in m.class_sizes() {
            assert_eq!(c % 4, 0);
            assert!(c >= MIN_CLASS);
        }
    }

    #[test]
    fn bounded_fragmentation_honours_bound() {
        let m = SizeMap::bounded_fragmentation(0.25);
        for size in 1..=MAP_MAX {
            let c = m.rounded(size).unwrap();
            assert!(c >= size);
            let rounded = size.div_ceil(4) * 4;
            let waste = f64::from(c - rounded) / f64::from(c);
            // Sizes below MIN_CLASS inevitably waste more.
            if size >= MIN_CLASS {
                assert!(waste <= 0.25 + 1e-9, "size {size} wastes {waste} in class {c}");
            }
        }
        // Classes grow geometrically: far fewer classes than word
        // multiples at the large end.
        let big_classes = m.class_sizes().iter().filter(|&&c| c >= 1024).count();
        assert!(big_classes < 8, "geometric spacing, found {big_classes} classes >= 1024");
    }

    #[test]
    fn papers_example_classes_round_12_to_16() {
        // "if 25% or less internal fragmentation is tolerated, then
        // objects of size 12-16 bytes are rounded to 16" — with a class
        // list that lacks a 12-byte class.
        let m = SizeMap::from_classes([8, 16, 32]);
        assert_eq!(m.rounded(12), Some(16));
        assert_eq!(m.rounded(16), Some(16));
        assert_eq!(m.rounded(17), Some(32));
    }

    #[test]
    fn profile_top_sizes_become_exact_classes() {
        let mut p = SizeProfile::new();
        for _ in 0..1000 {
            p.record(24);
        }
        for _ in 0..10 {
            p.record(100);
        }
        let m = SizeMap::from_profile(&p, 1, 0.5);
        assert_eq!(m.rounded(24), Some(24), "hot size gets an exact class");
        assert!(m.rounded(100).unwrap() >= 100);
    }

    #[test]
    fn profile_counts_and_merge() {
        let mut a: SizeProfile = [8u32, 8, 24].into_iter().collect();
        let b: SizeProfile = [24u32, 24].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(8), 2);
        assert_eq!(a.count(24), 3);
        assert_eq!(a.total(), 5);
        assert_eq!(a.top_sizes(2), vec![24, 8]);
    }

    #[test]
    fn heap_array_lookup_matches_pure_lookup() {
        let mut heap = HeapImage::new();
        let mut sink = CountingSink::new();
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        let m = SizeMap::bounded_fragmentation(0.25);
        let base = m.write_to_heap(&mut ctx).unwrap();
        for size in [1u32, 8, 12, 24, 100, 2048] {
            assert_eq!(SizeMap::lookup(base, size, &mut ctx), m.class_for(size).unwrap());
        }
        assert!(sink.stats().meta_reads >= 6, "lookups must be traced");
    }
}
