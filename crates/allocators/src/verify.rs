//! Heap consistency checkers used by tests and the property-based suite.
//!
//! The checkers read the heap image through [`MemCtx::peek`], so they
//! never perturb the reference trace or the instruction counts of the
//! allocator under test.

use std::fmt;

use sim_mem::{Address, MemCtx};

use crate::layout::{tag_allocated, tag_size, MIN_BLOCK, TAG};

/// A violated heap invariant, reported with enough context to debug the
/// allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapCorruption {
    /// Address of the offending block or word.
    pub at: Address,
    /// Human-readable description of the violated invariant.
    pub what: String,
}

impl fmt::Display for HeapCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heap corruption at {}: {}", self.at, self.what)
    }
}

impl std::error::Error for HeapCorruption {}

/// Summary of a boundary-tag heap walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapWalk {
    /// Blocks with the allocated bit set.
    pub allocated_blocks: u64,
    /// Blocks with the allocated bit clear.
    pub free_blocks: u64,
    /// Total bytes in allocated blocks (tags included).
    pub allocated_bytes: u64,
    /// Total bytes in free blocks.
    pub free_bytes: u64,
    /// Adjacent free pairs found (non-zero means coalescing missed work).
    pub adjacent_free_pairs: u64,
}

/// Walks a boundary-tagged heap region starting at the first block header
/// `start` and ending at an allocated zero-size epilogue tag, verifying:
///
/// * every header equals its footer,
/// * block sizes are word multiples of at least [`MIN_BLOCK`] (allocated
///   fast-storage blocks may be smaller, but never smaller than 8),
/// * blocks tile the region exactly (no gaps, no overlap).
///
/// Returns a [`HeapWalk`] summary.
///
/// # Errors
///
/// Returns [`HeapCorruption`] describing the first violated invariant.
pub fn check_tagged_heap(ctx: &MemCtx<'_>, start: Address) -> Result<HeapWalk, HeapCorruption> {
    let mut walk = HeapWalk::default();
    let mut b = start;
    let mut prev_free = false;
    loop {
        let header = ctx.peek(b);
        let size = tag_size(header);
        if size == 0 {
            if !tag_allocated(header) {
                return Err(HeapCorruption {
                    at: b,
                    what: "zero-size block without allocated bit (bad epilogue)".into(),
                });
            }
            return Ok(walk);
        }
        if u64::from(size) % 4 != 0 {
            return Err(HeapCorruption { at: b, what: format!("size {size} not word multiple") });
        }
        if size < 8 {
            return Err(HeapCorruption { at: b, what: format!("size {size} below minimum") });
        }
        let footer = ctx.peek(b + u64::from(size) - TAG);
        if footer != header {
            return Err(HeapCorruption {
                at: b,
                what: format!("header {header:#x} != footer {footer:#x}"),
            });
        }
        if tag_allocated(header) {
            walk.allocated_blocks += 1;
            walk.allocated_bytes += u64::from(size);
            prev_free = false;
        } else {
            if size < MIN_BLOCK {
                return Err(HeapCorruption {
                    at: b,
                    what: format!("free block of {size} bytes cannot hold links"),
                });
            }
            if prev_free {
                walk.adjacent_free_pairs += 1;
            }
            walk.free_blocks += 1;
            walk.free_bytes += u64::from(size);
            prev_free = true;
        }
        b += u64::from(size);
    }
}

/// Walks the circular doubly-linked freelist rooted at the sentinel
/// `head`, verifying link symmetry (`node.next.prev == node`) and that
/// every member is a free block. Returns the member count.
///
/// # Errors
///
/// Returns [`HeapCorruption`] on the first broken link or allocated
/// member.
pub fn check_freelist(
    ctx: &MemCtx<'_>,
    head: Address,
    max_nodes: u64,
) -> Result<u64, HeapCorruption> {
    use crate::layout::{NEXT_OFF, PREV_OFF};
    let mut count = 0;
    let mut node = Address::new(u64::from(ctx.peek(head + NEXT_OFF)));
    let mut pred = head;
    while node != head {
        if count > max_nodes {
            return Err(HeapCorruption {
                at: node,
                what: format!("freelist longer than {max_nodes} nodes (cycle?)"),
            });
        }
        let back = Address::new(u64::from(ctx.peek(node + PREV_OFF)));
        if back != pred {
            return Err(HeapCorruption {
                at: node,
                what: format!("prev link {back} does not point at predecessor {pred}"),
            });
        }
        let header = ctx.peek(node);
        if tag_allocated(header) {
            return Err(HeapCorruption { at: node, what: "allocated block on freelist".into() });
        }
        count += 1;
        pred = node;
        node = Address::new(u64::from(ctx.peek(node + NEXT_OFF)));
    }
    let back = Address::new(u64::from(ctx.peek(head + PREV_OFF)));
    if back != pred {
        return Err(HeapCorruption {
            at: head,
            what: format!("sentinel prev {back} does not close the cycle at {pred}"),
        });
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{encode, list, write_tags, F_ALLOC};
    use sim_mem::{HeapImage, InstrCounter, NullSink};

    fn with_ctx<R>(f: impl FnOnce(&mut MemCtx<'_>) -> R) -> R {
        let mut heap = HeapImage::new();
        let mut sink = NullSink;
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        f(&mut ctx)
    }

    #[test]
    fn detects_header_footer_mismatch() {
        with_ctx(|ctx| {
            let start = ctx.sbrk(64).unwrap();
            write_tags(ctx, start, 32, F_ALLOC);
            // Corrupt the footer.
            ctx.store(start + 28, encode(24, F_ALLOC));
            ctx.store(start + 32, encode(0, F_ALLOC)); // epilogue
            let err = check_tagged_heap(ctx, start).unwrap_err();
            assert!(err.what.contains("footer"), "{err}");
        });
    }

    #[test]
    fn accepts_well_formed_region_and_counts() {
        with_ctx(|ctx| {
            let start = ctx.sbrk(100).unwrap();
            write_tags(ctx, start, 32, F_ALLOC);
            write_tags(ctx, start + 32, 48, 0);
            ctx.store(start + 80, encode(0, F_ALLOC));
            let walk = check_tagged_heap(ctx, start).unwrap();
            assert_eq!(walk.allocated_blocks, 1);
            assert_eq!(walk.free_blocks, 1);
            assert_eq!(walk.allocated_bytes, 32);
            assert_eq!(walk.free_bytes, 48);
            assert_eq!(walk.adjacent_free_pairs, 0);
        });
    }

    #[test]
    fn flags_adjacent_free_blocks() {
        with_ctx(|ctx| {
            let start = ctx.sbrk(100).unwrap();
            write_tags(ctx, start, 32, 0);
            write_tags(ctx, start + 32, 48, 0);
            ctx.store(start + 80, encode(0, F_ALLOC));
            let walk = check_tagged_heap(ctx, start).unwrap();
            assert_eq!(walk.adjacent_free_pairs, 1);
        });
    }

    #[test]
    fn freelist_checker_detects_broken_prev() {
        with_ctx(|ctx| {
            let head = ctx.sbrk(list::SENTINEL_BYTES).unwrap();
            let a = ctx.sbrk(32).unwrap();
            write_tags(ctx, a, 32, 0);
            list::init_head(ctx, head);
            list::insert_after(ctx, head, a);
            assert_eq!(check_freelist(ctx, head, 10).unwrap(), 1);
            // Break the back link.
            ctx.store(a + crate::layout::PREV_OFF, 0);
            assert!(check_freelist(ctx, head, 10).is_err());
        });
    }
}
