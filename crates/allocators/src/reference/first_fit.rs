//! `FIRSTFIT`: Knuth's first-fit allocator with the optimizations of the
//! Moraes implementation measured in the paper.
//!
//! * One circular doubly-linked freelist holding **all** free blocks.
//! * A *roving pointer*: searches resume where the last one left off,
//!   preventing small blocks from accumulating at the list front.
//! * *Boundary tags* (header + footer, 8 bytes per object) enabling
//!   constant-time coalescing with both neighbours on `free`.
//! * Blocks found oversized are split unless the remainder's payload would
//!   be smaller than the split threshold (24 bytes in the paper).
//!
//! The paper's diagnosis — searching a freelist whose blocks are scattered
//! across the address space is "disastrous for page reference and cache
//! locality" — emerges here mechanically: each visited block costs a
//! header load and a link load at an arbitrary heap address, all of which
//! enter the reference trace.

use sim_mem::{Address, MemCtx};

use crate::layout::{
    encode, list, read_header, read_prev_footer, round_payload, tag_allocated, tag_size,
    write_tags, F_ALLOC, MIN_BLOCK, TAG, TAG_OVERHEAD,
};
use crate::{AllocError, AllocStats, Allocator};

/// Default split threshold: an oversized block is split only if the
/// remainder's payload is at least this many bytes (Knuth's optimization
/// as configured by the paper's FIRSTFIT).
pub const DEFAULT_SPLIT_THRESHOLD: u32 = 24;

/// Configuration knobs, exposed for the ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct FirstFitConfig {
    /// Minimum remainder payload for a split to happen.
    pub split_threshold: u32,
    /// Whether `free` coalesces with adjacent free blocks. Disabling this
    /// is *not* the paper's FIRSTFIT; it exists to quantify what
    /// coalescing costs (the ablation DESIGN.md calls out).
    pub coalesce: bool,
    /// Whether searches resume from the roving pointer (`true`, the
    /// paper's configuration) or always start at the list head.
    pub roving: bool,
}

impl Default for FirstFitConfig {
    fn default() -> Self {
        FirstFitConfig { split_threshold: DEFAULT_SPLIT_THRESHOLD, coalesce: true, roving: true }
    }
}

/// The classic first-fit allocator. See the module docs.
#[derive(Debug)]
pub struct FirstFit {
    /// Sentinel head of the circular freelist (lives in the static area).
    head: Address,
    /// Roving pointer: the node at which the next search starts.
    rover: Address,
    /// One past our epilogue word; if the heap break moved past it,
    /// another allocator grabbed memory and extension is discontiguous.
    top_end: Address,
    config: FirstFitConfig,
    stats: AllocStats,
}

impl FirstFit {
    /// Creates a first-fit allocator with the paper's configuration,
    /// reserving its static area and heap sentinels.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the initial reservation fails.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        Self::with_config(ctx, FirstFitConfig::default())
    }

    /// Creates a first-fit allocator with explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the initial reservation fails.
    pub fn with_config(ctx: &mut MemCtx<'_>, config: FirstFitConfig) -> Result<Self, AllocError> {
        // Static area: freelist sentinel, then the heap prologue word; the
        // epilogue word follows and is pushed right by every extension.
        let head = ctx.sbrk(list::SENTINEL_BYTES)?;
        list::init_head(ctx, head);
        let prologue = ctx.sbrk(TAG)?;
        ctx.store(prologue, encode(0, F_ALLOC));
        let epilogue = ctx.sbrk(TAG)?;
        ctx.store(epilogue, encode(0, F_ALLOC));
        let top_end = ctx.heap().brk();
        Ok(FirstFit { head, rover: head, top_end, config, stats: AllocStats::new() })
    }

    /// The freelist sentinel address (used by the consistency checker).
    pub fn freelist_head(&self) -> Address {
        self.head
    }

    /// Current configuration.
    pub fn config(&self) -> FirstFitConfig {
        self.config
    }

    /// Total block size needed to satisfy a payload request.
    fn block_size(request: u32) -> u32 {
        round_payload(request) + TAG_OVERHEAD
    }

    /// Searches the freelist from the rover for the first block of at
    /// least `need` bytes. Returns its address and size, or `None` after a
    /// full cycle.
    fn search(&mut self, need: u32, ctx: &mut MemCtx<'_>) -> Option<(Address, u32)> {
        let start = if self.config.roving { self.rover } else { self.head };
        let mut node = start;
        loop {
            if node != self.head {
                let tag = read_header(ctx, node);
                self.stats.search_visits += 1;
                ctx.ops(2);
                if tag_size(tag) >= need {
                    return Some((node, tag_size(tag)));
                }
            }
            node = list::next(ctx, node);
            ctx.ops(1);
            if node == start {
                return None;
            }
        }
    }

    /// Carves an allocation of `need` bytes out of the free block `b`
    /// (which is on the freelist), splitting if the remainder is worth
    /// keeping. Returns the payload address.
    fn allocate_from(
        &mut self,
        b: Address,
        bsize: u32,
        need: u32,
        ctx: &mut MemCtx<'_>,
    ) -> (Address, u32) {
        debug_assert!(bsize >= need);
        let remainder = bsize - need;
        ctx.ops(2);
        if remainder >= MIN_BLOCK && remainder - TAG_OVERHEAD >= self.config.split_threshold {
            // Split: the front becomes the allocation, the tail keeps the
            // original's freelist position.
            let tail = b + u64::from(need);
            list::replace(ctx, b, tail);
            write_tags(ctx, tail, remainder, 0);
            write_tags(ctx, b, need, F_ALLOC);
            self.rover = tail;
            self.stats.splits += 1;
            (b + TAG, need)
        } else {
            let succ = list::next(ctx, b);
            list::unlink(ctx, b);
            write_tags(ctx, b, bsize, F_ALLOC);
            self.rover = if succ == b { self.head } else { succ };
            (b + TAG, bsize)
        }
    }

    /// Grows the heap by at least `need` bytes and returns the resulting
    /// free block (already coalesced with a trailing free neighbour and
    /// inserted into the freelist).
    fn extend(&mut self, need: u32, ctx: &mut MemCtx<'_>) -> Result<(Address, u32), AllocError> {
        let old_brk = ctx.heap().brk();
        let block = if old_brk == self.top_end {
            // Contiguous growth: the old epilogue word becomes the new
            // block's header.
            ctx.sbrk(u64::from(need))?;
            old_brk - TAG
        } else {
            // Another allocator moved the break: start a fresh tagged
            // region with its own prologue word.
            let start = ctx.sbrk(u64::from(need) + 2 * TAG)?;
            ctx.store(start, encode(0, F_ALLOC));
            start + TAG
        };
        write_tags(ctx, block, need, 0);
        let new_epilogue = block + u64::from(need);
        ctx.store(new_epilogue, encode(0, F_ALLOC));
        self.top_end = ctx.heap().brk();
        list::insert_after(ctx, self.head, block);
        // Merge with a free block ending right before the new one.
        let merged =
            if self.config.coalesce { self.coalesce(block, need, ctx) } else { (block, need) };
        Ok(merged)
    }

    /// Coalesces the free, on-list block `b` of `size` bytes with free
    /// neighbours; returns the address and size of the (possibly merged)
    /// block, still on the list.
    fn coalesce(&mut self, mut b: Address, mut size: u32, ctx: &mut MemCtx<'_>) -> (Address, u32) {
        // Backward merge.
        let prev_tag = read_prev_footer(ctx, b);
        ctx.ops(2);
        if !tag_allocated(prev_tag) && tag_size(prev_tag) != 0 {
            let prev = b - u64::from(tag_size(prev_tag));
            list::unlink(ctx, b);
            if self.rover == b {
                self.rover = prev;
            }
            size += tag_size(prev_tag);
            b = prev;
            write_tags(ctx, b, size, 0);
            self.stats.coalesces += 1;
        }
        // Forward merge.
        let next_tag = read_header(ctx, b + u64::from(size));
        ctx.ops(2);
        if !tag_allocated(next_tag) && tag_size(next_tag) != 0 {
            let next = b + u64::from(size);
            if self.rover == next {
                self.rover = b;
            }
            list::unlink(ctx, next);
            size += tag_size(next_tag);
            write_tags(ctx, b, size, 0);
            self.stats.coalesces += 1;
        }
        (b, size)
    }
}

impl Allocator for FirstFit {
    fn name(&self) -> &'static str {
        "FirstFit"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let need = Self::block_size(size);
        ctx.ops(4);
        let visits_before = self.stats.search_visits;
        let (block, bsize) = match self.search(need, ctx) {
            Some(found) => found,
            None => self.extend(need, ctx)?,
        };
        let (payload, granted) = self.allocate_from(block, bsize, need, ctx);
        ctx.obs_observe("alloc.search_len", self.stats.search_visits - visits_before);
        self.stats.note_malloc(size, granted);
        Ok(payload)
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if ptr.raw() < TAG || !ctx.heap().contains(ptr - TAG, TAG) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let b = ptr - TAG;
        let tag = read_header(ctx, b);
        ctx.ops(2);
        if !tag_allocated(tag) || tag_size(tag) < MIN_BLOCK {
            return Err(AllocError::InvalidFree(ptr));
        }
        let size = tag_size(tag);
        if !ctx.heap().contains(b, u64::from(size) + TAG) {
            return Err(AllocError::InvalidFree(ptr));
        }
        write_tags(ctx, b, size, 0);
        // Insert at the rover position, as the Moraes implementation does:
        // freshly freed storage is encountered quickly by the next search.
        list::insert_after(ctx, self.rover, b);
        let merges_before = self.stats.coalesces;
        if self.config.coalesce {
            self.coalesce(b, size, ctx);
        }
        ctx.obs_observe("alloc.coalesce_per_free", self.stats.coalesces - merges_before);
        self.stats.note_free(size);
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_tagged_heap;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    #[test]
    fn malloc_returns_disjoint_word_aligned_payloads() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let a = ff.malloc(10, &mut ctx).unwrap();
        let b = ff.malloc(20, &mut ctx).unwrap();
        let c = ff.malloc(1, &mut ctx).unwrap();
        assert!(a.is_word_aligned() && b.is_word_aligned() && c.is_word_aligned());
        // Disjoint: payload a is 12 bytes (10 rounded), plus footer+header = 8.
        assert!(b - a >= 12 + 8);
        assert!(c - b >= 20 + 8);
    }

    #[test]
    fn free_then_malloc_reuses_space() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let a = ff.malloc(64, &mut ctx).unwrap();
        let high = ctx.heap().in_use();
        ff.free(a, &mut ctx).unwrap();
        let b = ff.malloc(64, &mut ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(ctx.heap().in_use(), high, "no new sbrk needed");
    }

    #[test]
    fn coalescing_merges_neighbours_into_one_block() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let a = ff.malloc(40, &mut ctx).unwrap();
        let b = ff.malloc(40, &mut ctx).unwrap();
        let _hold = ff.malloc(16, &mut ctx).unwrap();
        ff.free(a, &mut ctx).unwrap();
        ff.free(b, &mut ctx).unwrap();
        assert_eq!(ff.stats().coalesces, 1);
        // The merged 96-byte block satisfies a request neither 48-byte
        // block could.
        let big = ff.malloc(80, &mut ctx).unwrap();
        assert_eq!(big, a);
        check_tagged_heap(&ctx, ctx_start(&ff)).unwrap();
    }

    #[test]
    fn split_threshold_suppresses_tiny_remainders() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let a = ff.malloc(48, &mut ctx).unwrap();
        ff.free(a, &mut ctx).unwrap();
        // 48-byte payload block; requesting 40 leaves a remainder payload
        // of 8 < 24, so the whole block is granted.
        let b = ff.malloc(40, &mut ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(ff.stats().live_granted, 48 + 8);
    }

    #[test]
    fn split_happens_when_remainder_is_useful() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let a = ff.malloc(100, &mut ctx).unwrap();
        ff.free(a, &mut ctx).unwrap();
        let b = ff.malloc(16, &mut ctx).unwrap();
        assert_eq!(a, b);
        // Remainder should be reusable without growing the heap.
        let high = ctx.heap().in_use();
        let c = ff.malloc(60, &mut ctx).unwrap();
        assert_eq!(ctx.heap().in_use(), high);
        assert!(c > b);
    }

    #[test]
    fn double_free_detected() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let a = ff.malloc(32, &mut ctx).unwrap();
        ff.free(a, &mut ctx).unwrap();
        assert_eq!(ff.free(a, &mut ctx), Err(AllocError::InvalidFree(a)));
    }

    #[test]
    fn search_visits_accumulate_with_fragmentation() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let ptrs: Vec<_> = (0..32).map(|_| ff.malloc(16, &mut ctx).unwrap()).collect();
        // Free every other block: fragmented freelist of small blocks.
        for p in ptrs.iter().step_by(2) {
            ff.free(*p, &mut ctx).unwrap();
        }
        let before = ff.stats().search_visits;
        // A large request must walk past all 16 small blocks.
        ff.malloc(512, &mut ctx).unwrap();
        assert!(ff.stats().search_visits - before >= 16);
    }

    #[test]
    fn stats_track_mallocs_and_frees() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let a = ff.malloc(24, &mut ctx).unwrap();
        let _b = ff.malloc(24, &mut ctx).unwrap();
        ff.free(a, &mut ctx).unwrap();
        assert_eq!(ff.stats().mallocs, 2);
        assert_eq!(ff.stats().frees, 1);
        assert_eq!(ff.stats().live_objects(), 1);
        assert_eq!(ff.stats().requested_bytes, 48);
    }

    #[test]
    fn heap_remains_consistent_under_mixed_traffic() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ff = FirstFit::new(&mut ctx).unwrap();
        let mut live = Vec::new();
        for i in 0..200u32 {
            let p = ff.malloc(8 + (i * 7) % 120, &mut ctx).unwrap();
            live.push(p);
            if i % 3 == 0 {
                let victim = live.swap_remove((i as usize * 5) % live.len());
                ff.free(victim, &mut ctx).unwrap();
            }
        }
        check_tagged_heap(&ctx, ctx_start(&ff)).unwrap();
        for p in live {
            ff.free(p, &mut ctx).unwrap();
        }
        check_tagged_heap(&ctx, ctx_start(&ff)).unwrap();
        assert_eq!(ff.stats().live_objects(), 0);
        assert_eq!(ff.stats().live_granted, 0);
    }

    #[test]
    fn no_coalesce_config_never_merges() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let cfg = FirstFitConfig { coalesce: false, ..FirstFitConfig::default() };
        let mut ff = FirstFit::with_config(&mut ctx, cfg).unwrap();
        let a = ff.malloc(40, &mut ctx).unwrap();
        let b = ff.malloc(40, &mut ctx).unwrap();
        ff.free(a, &mut ctx).unwrap();
        ff.free(b, &mut ctx).unwrap();
        assert_eq!(ff.stats().coalesces, 0);
    }

    /// First block address for the consistency walker: after the sentinel
    /// (12 bytes) and prologue word.
    fn ctx_start(ff: &FirstFit) -> Address {
        ff.freelist_head() + list::SENTINEL_BYTES + TAG
    }
}
