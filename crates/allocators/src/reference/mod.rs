//! Verbatim ports of the pre-rework allocator implementations.
//!
//! Every allocator in the crate root was rebuilt around host-side shadow
//! state ([`crate::shadow`]): free-list walks iterate a compact slab
//! instead of chasing pointers through the multi-megabyte heap image,
//! metadata loads are served from mirrors and emitted with
//! [`sim_mem::MemCtx::shadow_load`], and instruction charges are batched
//! per operation. These modules preserve the originals — same heap
//! layout, same traced reference sequence, same instruction charges,
//! same statistics — so the rework can be regression-gated forever:
//!
//! * `perf --alloc` drives one captured workload through each rebuilt
//!   allocator *and* its port here, requires bit-identical reference
//!   streams, stats, heap images and `alloc.search_len` histograms, and
//!   gates the slowest lane's speedup;
//! * the `reference_equivalence` property tests do the same over
//!   randomized alloc/free scripts.
//!
//! The only edits relative to the originals are module paths: ports that
//! embed another allocator ([`quick_fit`] embeds GNU G++, the pool
//! allocators embed [`chunked`]) embed the *port*, never the rebuilt
//! version, so a lane measures exactly one implementation generation.

pub mod best_fit;
pub mod bsd;
pub mod buddy;
pub mod chunked;
pub mod custom;
pub mod first_fit;
pub mod gnu_gxx;
pub mod gnu_local;
pub mod predictive;
pub mod quick_fit;

pub use best_fit::BestFit;
pub use bsd::Bsd;
pub use buddy::Buddy;
pub use chunked::ChunkedHeap;
pub use custom::Custom;
pub use first_fit::FirstFit;
pub use gnu_gxx::GnuGxx;
pub use gnu_local::GnuLocal;
pub use predictive::Predictive;
pub use quick_fit::QuickFit;
