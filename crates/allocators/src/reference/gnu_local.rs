//! `GNU LOCAL`: Mike Haertel's hybrid allocator (the Free Software
//! Foundation `malloc`), which "actively seeks to improve the locality of
//! reference".
//!
//! * Storage is divided into page-sized chunks; per-chunk information
//!   lives in small, highly-localized chunk headers (the descriptor table
//!   of [`crate::chunked`]).
//! * Requests up to half a page are rounded to power-of-two *fragments*;
//!   a chunk is dedicated to fragments of a single size, so the size of
//!   any object can be recovered from its chunk header — there are **no
//!   per-object boundary tags**.
//! * Larger requests take runs of whole chunks, found by first-fit over
//!   the descriptor table rather than over the heap.
//! * When every fragment of a chunk is free, the whole chunk is
//!   reclaimed for reuse by any class.
//!
//! The paper finds this careful engineering does lower miss rates
//! slightly, but its extra bookkeeping CPU work (visible here as higher
//! instruction counts per operation) means it "appears to gain little by
//! this careful design" in total execution time.
//!
//! For Table 6 the paper re-ran GNU LOCAL with an *emulated* 8-byte
//! boundary tag added to every object, to isolate the cache pollution
//! caused by tags; [`GnuLocalConfig::emulate_boundary_tags`] reproduces
//! that modification.

use sim_mem::{Address, MemCtx};

use super::chunked::{ChunkedHeap, FRAG_MAX};
use crate::{AllocError, AllocStats, Allocator};

/// Smallest fragment size (bytes).
pub const MIN_FRAG: u32 = 8;

/// Configuration for [`GnuLocal`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GnuLocalConfig {
    /// Table 6's modification: add eight bytes of per-object overhead and
    /// touch the tag words on `malloc`/`free`, emulating the cache
    /// pollution of boundary tags "without otherwise influencing the DSA
    /// implementation".
    pub emulate_boundary_tags: bool,
}

/// Haertel's GNU malloc. See the module docs.
#[derive(Debug)]
pub struct GnuLocal {
    heap: ChunkedHeap,
    config: GnuLocalConfig,
    stats: AllocStats,
}

impl GnuLocal {
    /// Creates a GNU LOCAL allocator with power-of-two fragment classes
    /// (8 bytes to half a page).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata area cannot be
    /// reserved.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        Self::with_config(ctx, GnuLocalConfig::default())
    }

    /// Creates a GNU LOCAL allocator with explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata area cannot be
    /// reserved.
    pub fn with_config(ctx: &mut MemCtx<'_>, config: GnuLocalConfig) -> Result<Self, AllocError> {
        let classes: Vec<u32> =
            (0..).map(|k| MIN_FRAG << k).take_while(|&s| s <= FRAG_MAX).collect();
        let heap = ChunkedHeap::new(ctx, classes)?;
        Ok(GnuLocal { heap, config, stats: AllocStats::new() })
    }

    /// The fragment class index for an internal size, or `None` for a
    /// whole-chunk allocation. Computed arithmetically (shift loop), as
    /// the original does.
    fn class_for(size: u32) -> Option<usize> {
        if size > FRAG_MAX {
            return None;
        }
        let s = size.max(MIN_FRAG).next_power_of_two();
        Some((s / MIN_FRAG).trailing_zeros() as usize)
    }
}

impl Allocator for GnuLocal {
    fn name(&self) -> &'static str {
        "GNU local"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        // The emulated boundary tags inflate every request by 8 bytes.
        let tags = if self.config.emulate_boundary_tags { 8 } else { 0 };
        let internal = size.max(1) + tags;
        // GNU malloc's per-call CPU cost is substantial: a shift loop for
        // the class, software division/modulo by BLOCKSIZE (the R3000 of
        // the paper's test machine has no fast divide; ~35 cycles), call
        // and bookkeeping overhead. The paper measures this as GNU
        // LOCAL's "considerable expense in execution performance"
        // (Tables 4-5 put it well above QuickFit/BSD on instructions).
        ctx.ops(88 + u64::from(internal.next_power_of_two().trailing_zeros()));
        let (addr, granted) = match Self::class_for(internal) {
            Some(class) => {
                // Fragment allocations never walk a freelist of heap
                // blocks (the descriptor table is the index); the zero
                // keeps the search-length histogram comparable.
                ctx.obs_add("alloc.frag_allocs", 1);
                ctx.obs_observe("alloc.search_len", 0);
                let a = self.heap.alloc_frag(class, ctx)?;
                (a, self.heap.class_sizes()[class])
            }
            None => {
                ctx.obs_add("alloc.chunk_allocs", 1);
                let a = self.heap.alloc_large(internal, ctx)?;
                (a, internal.div_ceil(super::chunked::CHUNK) * super::chunked::CHUNK)
            }
        };
        // Table 6's methodology: the extra space alone models the
        // pollution ("without otherwise influencing the DSA
        // implementation") — tag bytes share cache blocks with object
        // data, so each block prefetches less useful payload.
        let user = if self.config.emulate_boundary_tags { addr + 4 } else { addr };
        self.stats.note_malloc(size, granted);
        Ok(user)
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        // Division/modulo to locate the chunk descriptor, plus call
        // overhead; see the cost note in `malloc`.
        ctx.ops(78);
        let addr = if self.config.emulate_boundary_tags { ptr - 4 } else { ptr };
        let granted = self.heap.free_at(addr, ctx)?;
        // Chunk reclamation is not boundary-tag coalescing; the zero
        // keeps the histogram covering every free.
        ctx.obs_observe("alloc.coalesce_per_free", 0);
        self.stats.note_free(granted);
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    #[test]
    fn class_mapping_is_power_of_two() {
        assert_eq!(GnuLocal::class_for(1), Some(0)); // 8
        assert_eq!(GnuLocal::class_for(8), Some(0));
        assert_eq!(GnuLocal::class_for(9), Some(1)); // 16
        assert_eq!(GnuLocal::class_for(24), Some(2)); // 32
        assert_eq!(GnuLocal::class_for(2048), Some(8));
        assert_eq!(GnuLocal::class_for(2049), None);
    }

    #[test]
    fn small_objects_have_no_per_object_overhead() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuLocal::new(&mut ctx).unwrap();
        let a = g.malloc(32, &mut ctx).unwrap();
        let b = g.malloc(32, &mut ctx).unwrap();
        // Exactly 32 bytes apart: no header between objects.
        assert_eq!(b - a, 32);
        assert_eq!(g.stats().live_granted, 64);
    }

    #[test]
    fn free_recovers_size_from_chunk_header() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuLocal::new(&mut ctx).unwrap();
        let a = g.malloc(100, &mut ctx).unwrap(); // 128-byte class
        g.free(a, &mut ctx).unwrap();
        assert_eq!(g.stats().live_granted, 0);
        assert_eq!(g.malloc(100, &mut ctx).unwrap(), a);
    }

    #[test]
    fn large_objects_round_to_whole_chunks() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuLocal::new(&mut ctx).unwrap();
        let a = g.malloc(5000, &mut ctx).unwrap();
        assert_eq!(a.raw() % 4096, 0);
        assert_eq!(g.stats().live_granted, 8192);
        g.free(a, &mut ctx).unwrap();
        assert_eq!(g.stats().live_granted, 0);
    }

    #[test]
    fn boundary_tag_emulation_offsets_user_pointers() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let cfg = GnuLocalConfig { emulate_boundary_tags: true };
        let mut g = GnuLocal::with_config(&mut ctx, cfg).unwrap();
        let a = g.malloc(24, &mut ctx).unwrap();
        let b = g.malloc(24, &mut ctx).unwrap();
        // 24 + 8 = 32-byte class; user pointers sit one word past each
        // fragment, with the emulated tag space between objects.
        assert_eq!(b - a, 32);
        g.free(a, &mut ctx).unwrap();
        g.free(b, &mut ctx).unwrap();
        assert_eq!(g.stats().live_granted, 0);
    }

    #[test]
    fn boundary_tag_emulation_changes_class_when_crossing() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let cfg = GnuLocalConfig { emulate_boundary_tags: true };
        let mut g = GnuLocal::with_config(&mut ctx, cfg).unwrap();
        // 28 bytes + 8 = 36 → 64-byte class (instead of 32 without tags).
        g.malloc(28, &mut ctx).unwrap();
        assert_eq!(g.stats().live_granted, 64);
    }

    #[test]
    fn tagged_round_trip_preserves_pointers() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let cfg = GnuLocalConfig { emulate_boundary_tags: true };
        let mut g = GnuLocal::with_config(&mut ctx, cfg).unwrap();
        let mut live = Vec::new();
        for i in 0..100u32 {
            live.push(g.malloc(8 + i % 200, &mut ctx).unwrap());
        }
        for p in live {
            g.free(p, &mut ctx).unwrap();
        }
        assert_eq!(g.stats().live_granted, 0);
        assert_eq!(g.stats().live_objects(), 0);
    }

    #[test]
    fn invalid_free_surfaces() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuLocal::new(&mut ctx).unwrap();
        let a = g.malloc(16, &mut ctx).unwrap();
        assert!(matches!(g.free(a + 2, &mut ctx), Err(AllocError::InvalidFree(_))));
        g.free(a, &mut ctx).unwrap();
    }

    #[test]
    fn mixed_traffic_balances() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuLocal::new(&mut ctx).unwrap();
        let mut live = Vec::new();
        for i in 0..500u32 {
            let size = match i % 5 {
                0 => 8,
                1 => 24,
                2 => 100,
                3 => 1500,
                _ => 6000,
            };
            live.push(g.malloc(size, &mut ctx).unwrap());
            if i % 2 == 1 {
                let victim = live.swap_remove((i as usize * 13) % live.len());
                g.free(victim, &mut ctx).unwrap();
            }
        }
        for p in live {
            g.free(p, &mut ctx).unwrap();
        }
        assert_eq!(g.stats().live_objects(), 0);
        assert_eq!(g.stats().live_granted, 0);
    }
}
