//! `GNU G++`: Doug Lea's enhancement of first fit, as distributed with
//! libg++ and measured in the paper.
//!
//! The single freelist of [`crate::FirstFit`] is replaced by an array of
//! doubly-linked freelists *segregated by object size*: a block of size
//! `s` lives in the bin for `⌊log₂ s⌋`. An allocation searches only its
//! own bin (first fit within the bin "to increase the probability of a
//! better fit"), then takes the head of the next non-empty larger bin. In
//! all other respects — boundary tags, splitting, coalescing on free —
//! the algorithm matches FIRSTFIT.
//!
//! The paper finds that this one algorithmic change ("searching less
//! objects in the freelist") makes GNU G++ markedly more resilient than
//! FIRSTFIT in page-fault terms, while still second-worst in cache miss
//! rate — freelist search and coalescing still touch scattered blocks.

use sim_mem::{Address, MemCtx};

use crate::layout::{
    encode, list, read_header, read_prev_footer, round_payload, tag_allocated, tag_size,
    write_tags, F_ALLOC, MIN_BLOCK, TAG, TAG_OVERHEAD,
};
use crate::{AllocError, AllocStats, Allocator};

/// log₂ of the smallest block size (16 bytes).
pub const MIN_SHIFT: u32 = 4;

/// log₂ of the largest supported block size (128 MiB).
pub const MAX_SHIFT: u32 = 27;

/// Number of size-segregated bins.
pub const NBINS: usize = (MAX_SHIFT - MIN_SHIFT + 1) as usize;

/// Configuration knobs, exposed for the ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct GnuGxxConfig {
    /// Minimum remainder payload for a split to happen.
    pub split_threshold: u32,
    /// Whether `free` coalesces with adjacent free blocks.
    pub coalesce: bool,
}

impl Default for GnuGxxConfig {
    fn default() -> Self {
        GnuGxxConfig { split_threshold: crate::first_fit::DEFAULT_SPLIT_THRESHOLD, coalesce: true }
    }
}

/// Lea's size-segregated first-fit allocator. See the module docs.
#[derive(Debug)]
pub struct GnuGxx {
    /// Static area: `NBINS` sentinel nodes, 12 bytes each.
    bins: Address,
    /// One past our epilogue word; if the heap break moved past it,
    /// another allocator grabbed memory and extension is discontiguous.
    top_end: Address,
    config: GnuGxxConfig,
    stats: AllocStats,
}

impl GnuGxx {
    /// Creates a GNU G++ allocator with the paper's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the static area cannot be reserved.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        Self::with_config(ctx, GnuGxxConfig::default())
    }

    /// Creates a GNU G++ allocator with explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the static area cannot be reserved.
    pub fn with_config(ctx: &mut MemCtx<'_>, config: GnuGxxConfig) -> Result<Self, AllocError> {
        let bins = ctx.sbrk(NBINS as u64 * list::SENTINEL_BYTES)?;
        for k in 0..NBINS {
            list::init_head(ctx, bins + k as u64 * list::SENTINEL_BYTES);
        }
        let prologue = ctx.sbrk(TAG)?;
        ctx.store(prologue, encode(0, F_ALLOC));
        let epilogue = ctx.sbrk(TAG)?;
        ctx.store(epilogue, encode(0, F_ALLOC));
        let top_end = ctx.heap().brk();
        Ok(GnuGxx { bins, top_end, config, stats: AllocStats::new() })
    }

    /// The bin index for a block of `size` bytes.
    pub fn bin_for(size: u32) -> usize {
        debug_assert!(size >= MIN_BLOCK);
        let k = (31 - size.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
        (k - MIN_SHIFT) as usize
    }

    /// Sentinel address of bin `k`.
    fn bin_head(&self, k: usize) -> Address {
        self.bins + k as u64 * list::SENTINEL_BYTES
    }

    /// Inserts the free block `b` (tags already written) into its bin.
    fn bin_insert(&mut self, b: Address, size: u32, ctx: &mut MemCtx<'_>) {
        let head = self.bin_head(Self::bin_for(size));
        list::insert_after(ctx, head, b);
    }

    /// Finds and unlinks a free block of at least `need` bytes, searching
    /// the request's own bin first fit and then taking the head of the
    /// first non-empty larger bin.
    fn take_fit(&mut self, need: u32, ctx: &mut MemCtx<'_>) -> Option<(Address, u32)> {
        let start_bin = Self::bin_for(need);
        ctx.ops(3);
        // First fit within the request's own bin.
        let head = self.bin_head(start_bin);
        let mut node = list::next(ctx, head);
        while node != head {
            let tag = read_header(ctx, node);
            self.stats.search_visits += 1;
            ctx.ops(2);
            if tag_size(tag) >= need {
                list::unlink(ctx, node);
                return Some((node, tag_size(tag)));
            }
            node = list::next(ctx, node);
        }
        // Any block in a larger bin fits: take the first.
        for k in start_bin + 1..NBINS {
            let head = self.bin_head(k);
            let node = list::next(ctx, head);
            ctx.ops(1);
            if node != head {
                let tag = read_header(ctx, node);
                self.stats.search_visits += 1;
                list::unlink(ctx, node);
                return Some((node, tag_size(tag)));
            }
        }
        None
    }

    /// Grows the heap by `need` bytes; returns an off-list free block,
    /// merged with a free block that ended at the old frontier.
    fn extend(&mut self, need: u32, ctx: &mut MemCtx<'_>) -> Result<(Address, u32), AllocError> {
        let old_brk = ctx.heap().brk();
        let mut block = if old_brk == self.top_end {
            // Contiguous growth: the old epilogue word becomes the header.
            ctx.sbrk(u64::from(need))?;
            old_brk - TAG
        } else {
            // Another allocator moved the break: start a fresh tagged
            // region with its own prologue word.
            let start = ctx.sbrk(u64::from(need) + 2 * TAG)?;
            ctx.store(start, encode(0, F_ALLOC));
            start + TAG
        };
        let mut size = need;
        write_tags(ctx, block, size, 0);
        ctx.store(block + u64::from(size), encode(0, F_ALLOC));
        self.top_end = ctx.heap().brk();
        if self.config.coalesce {
            let prev_tag = read_prev_footer(ctx, block);
            ctx.ops(2);
            if !tag_allocated(prev_tag) && tag_size(prev_tag) != 0 {
                let prev = block - u64::from(tag_size(prev_tag));
                list::unlink(ctx, prev);
                size += tag_size(prev_tag);
                block = prev;
                write_tags(ctx, block, size, 0);
                self.stats.coalesces += 1;
            }
        }
        Ok((block, size))
    }

    /// Allocates `need` bytes from the off-list free block `b`, splitting
    /// if worthwhile; the remainder is re-binned.
    fn place(&mut self, b: Address, bsize: u32, need: u32, ctx: &mut MemCtx<'_>) -> (Address, u32) {
        debug_assert!(bsize >= need);
        let remainder = bsize - need;
        ctx.ops(2);
        if remainder >= MIN_BLOCK && remainder - TAG_OVERHEAD >= self.config.split_threshold {
            let tail = b + u64::from(need);
            write_tags(ctx, tail, remainder, 0);
            self.bin_insert(tail, remainder, ctx);
            write_tags(ctx, b, need, F_ALLOC);
            self.stats.splits += 1;
            (b + TAG, need)
        } else {
            write_tags(ctx, b, bsize, F_ALLOC);
            (b + TAG, bsize)
        }
    }
}

impl Allocator for GnuGxx {
    fn name(&self) -> &'static str {
        "GNU G++"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let need = round_payload(size) + TAG_OVERHEAD;
        ctx.ops(4);
        let visits_before = self.stats.search_visits;
        let (block, bsize) = match self.take_fit(need, ctx) {
            Some(found) => found,
            None => self.extend(need, ctx)?,
        };
        let (payload, granted) = self.place(block, bsize, need, ctx);
        ctx.obs_observe("alloc.search_len", self.stats.search_visits - visits_before);
        self.stats.note_malloc(size, granted);
        Ok(payload)
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if ptr.raw() < TAG || !ctx.heap().contains(ptr - TAG, TAG) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let mut b = ptr - TAG;
        let tag = read_header(ctx, b);
        ctx.ops(2);
        if !tag_allocated(tag) || tag_size(tag) < MIN_BLOCK {
            return Err(AllocError::InvalidFree(ptr));
        }
        let granted = tag_size(tag);
        if !ctx.heap().contains(b, u64::from(granted) + TAG) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let mut size = granted;
        let merges_before = self.stats.coalesces;
        if self.config.coalesce {
            // Forward merge.
            let next_tag = read_header(ctx, b + u64::from(size));
            ctx.ops(2);
            if !tag_allocated(next_tag) && tag_size(next_tag) != 0 {
                list::unlink(ctx, b + u64::from(size));
                size += tag_size(next_tag);
                self.stats.coalesces += 1;
            }
            // Backward merge.
            let prev_tag = read_prev_footer(ctx, b);
            ctx.ops(2);
            if !tag_allocated(prev_tag) && tag_size(prev_tag) != 0 {
                let prev = b - u64::from(tag_size(prev_tag));
                list::unlink(ctx, prev);
                size += tag_size(prev_tag);
                b = prev;
                self.stats.coalesces += 1;
            }
        }
        write_tags(ctx, b, size, 0);
        self.bin_insert(b, size, ctx);
        ctx.obs_observe("alloc.coalesce_per_free", self.stats.coalesces - merges_before);
        self.stats.note_free(granted);
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_freelist, check_tagged_heap};
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    fn first_block(g: &GnuGxx) -> Address {
        g.bins + NBINS as u64 * list::SENTINEL_BYTES + TAG
    }

    #[test]
    fn bin_for_uses_floor_log2() {
        assert_eq!(GnuGxx::bin_for(16), 0);
        assert_eq!(GnuGxx::bin_for(31), 0);
        assert_eq!(GnuGxx::bin_for(32), 1);
        assert_eq!(GnuGxx::bin_for(63), 1);
        assert_eq!(GnuGxx::bin_for(64), 2);
        assert_eq!(GnuGxx::bin_for(1 << 27), NBINS - 1);
    }

    #[test]
    fn basic_alloc_free_reuse() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuGxx::new(&mut ctx).unwrap();
        let a = g.malloc(40, &mut ctx).unwrap();
        g.free(a, &mut ctx).unwrap();
        let b = g.malloc(40, &mut ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn search_confined_to_matching_bin() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuGxx::new(&mut ctx).unwrap();
        // Populate bin 0 with many small free blocks.
        let smalls: Vec<_> = (0..20).map(|_| g.malloc(8, &mut ctx).unwrap()).collect();
        let big = g.malloc(400, &mut ctx).unwrap();
        let _hold = g.malloc(8, &mut ctx).unwrap();
        for p in smalls {
            g.free(p, &mut ctx).unwrap();
        }
        g.free(big, &mut ctx).unwrap();
        let before = g.stats().search_visits;
        // A 400-byte request starts in the 256..511 bin: it must not walk
        // the coalesced small-block entries living in lower bins.
        g.malloc(400, &mut ctx).unwrap();
        let visits = g.stats().search_visits - before;
        assert!(visits <= 3, "visited {visits} blocks, expected a direct bin hit");
    }

    #[test]
    fn larger_bins_serve_when_own_bin_empty() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuGxx::new(&mut ctx).unwrap();
        let big = g.malloc(1000, &mut ctx).unwrap();
        let _hold = g.malloc(8, &mut ctx).unwrap();
        g.free(big, &mut ctx).unwrap();
        // A 100-byte request is served by splitting the 1000-byte block.
        let small = g.malloc(100, &mut ctx).unwrap();
        assert_eq!(small, big);
        check_tagged_heap(&ctx, first_block(&g)).unwrap();
    }

    #[test]
    fn coalescing_rebins_merged_blocks() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuGxx::new(&mut ctx).unwrap();
        let a = g.malloc(56, &mut ctx).unwrap(); // 64-byte block
        let b = g.malloc(56, &mut ctx).unwrap();
        let _hold = g.malloc(8, &mut ctx).unwrap();
        g.free(a, &mut ctx).unwrap();
        g.free(b, &mut ctx).unwrap();
        assert_eq!(g.stats().coalesces, 1);
        // The merged 128-byte block must be findable via the 128-bin.
        let c = g.malloc(120, &mut ctx).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn freelists_remain_well_formed_under_traffic() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuGxx::new(&mut ctx).unwrap();
        let mut live = Vec::new();
        for i in 0..300u32 {
            live.push(g.malloc(4 + (i * 13) % 500, &mut ctx).unwrap());
            if i % 2 == 1 {
                let victim = live.swap_remove((i as usize * 7) % live.len());
                g.free(victim, &mut ctx).unwrap();
            }
        }
        check_tagged_heap(&ctx, first_block(&g)).unwrap();
        for k in 0..NBINS {
            check_freelist(&ctx, g.bin_head(k), 10_000).unwrap();
        }
        for p in live.drain(..) {
            g.free(p, &mut ctx).unwrap();
        }
        let walk = check_tagged_heap(&ctx, first_block(&g)).unwrap();
        assert_eq!(walk.allocated_blocks, 0);
        assert_eq!(walk.adjacent_free_pairs, 0, "full coalescing leaves no adjacent frees");
        assert_eq!(g.stats().live_granted, 0);
    }

    #[test]
    fn double_free_detected() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut g = GnuGxx::new(&mut ctx).unwrap();
        let a = g.malloc(32, &mut ctx).unwrap();
        g.free(a, &mut ctx).unwrap();
        assert_eq!(g.free(a, &mut ctx), Err(AllocError::InvalidFree(a)));
    }
}
