//! `CUSTOM`: the synthesized allocator the paper's conclusions call for
//! (§4.4 / §5.1).
//!
//! The paper ends by advocating an architecture that combines the
//! efficient pieces it identified:
//!
//! * QUICKFIT's structure — segregated exact-size freelists, no search,
//!   no coalescing — "should be the foundation for high-performance DSA
//!   implementations";
//! * size classes chosen from *empirical measurements of a particular
//!   program's behaviour* ([`SizeMap::from_profile`]), realized with
//!   Figure 9's size-mapping array;
//! * GNU LOCAL's chunk headers instead of per-object boundary tags, so
//!   no allocator-only words pollute the cache lines of object data.
//!
//! `Custom` is exactly that: requests are mapped through an in-heap
//! size-mapping array to a profile-derived class, fragments come from
//! dedicated page chunks ([`crate::chunked::ChunkedHeap`]), frees recover
//! the class from the chunk descriptor, and whole-chunk runs serve large
//! requests.

use sim_mem::{Address, MemCtx};

use super::chunked::{ChunkedHeap, PurgePolicy, CHUNK};
use crate::{AllocError, AllocStats, Allocator, SizeMap, SizeProfile};

/// Default number of exact profile-derived classes.
pub const DEFAULT_EXACT_CLASSES: usize = 16;

/// Default fragmentation bound for the backing classes.
pub const DEFAULT_FRAG_BOUND: f64 = 0.25;

/// The synthesized profile-driven allocator. See the module docs.
#[derive(Debug)]
pub struct Custom {
    heap: ChunkedHeap,
    map: SizeMap,
    /// In-heap Figure 9 size-mapping array.
    map_base: Address,
    stats: AllocStats,
}

impl Custom {
    /// Creates a synthesized allocator for the given size-class policy.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata cannot be reserved.
    pub fn with_size_map(ctx: &mut MemCtx<'_>, map: SizeMap) -> Result<Self, AllocError> {
        let map_base = map.write_to_heap(ctx)?;
        // Unlike GNU LOCAL's eager page release, retain one empty chunk
        // per class: a class whose live count hovers at a chunk boundary
        // would otherwise purge and re-carve a page on every cycle.
        let heap =
            ChunkedHeap::with_policy(ctx, map.class_sizes().to_vec(), PurgePolicy::Retain(1))?;
        Ok(Custom { heap, map, map_base, stats: AllocStats::new() })
    }

    /// Creates a synthesized allocator from an allocation profile, using
    /// [`DEFAULT_EXACT_CLASSES`] exact classes over a
    /// [`DEFAULT_FRAG_BOUND`] fragmentation-bounded backbone.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata cannot be reserved.
    pub fn from_profile(ctx: &mut MemCtx<'_>, profile: &SizeProfile) -> Result<Self, AllocError> {
        let map = SizeMap::from_profile(profile, DEFAULT_EXACT_CLASSES, DEFAULT_FRAG_BOUND);
        Self::with_size_map(ctx, map)
    }

    /// The size-class policy in use.
    pub fn size_map(&self) -> &SizeMap {
        &self.map
    }
}

impl Allocator for Custom {
    fn name(&self) -> &'static str {
        "Custom"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        ctx.ops(2);
        // Class-indexed allocation never searches; the zero keeps the
        // per-malloc search-length histogram comparable across
        // allocators (paper finding 1).
        ctx.obs_observe("alloc.search_len", 0);
        if size <= self.map.max_mapped() {
            // Figure 9: one array load maps the request to its class.
            let class = SizeMap::lookup(self.map_base, size, ctx);
            let a = self.heap.alloc_frag(class, ctx)?;
            self.stats.note_malloc(size, self.heap.class_sizes()[class]);
            Ok(a)
        } else {
            let a = self.heap.alloc_large(size, ctx)?;
            self.stats.note_malloc(size, size.div_ceil(CHUNK) * CHUNK);
            Ok(a)
        }
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        let granted = self.heap.free_at(ptr, ctx)?;
        // Segregated storage never coalesces; record the zero so the
        // histogram covers every free.
        ctx.obs_observe("alloc.coalesce_per_free", 0);
        self.stats.note_free(granted);
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    fn profiled() -> SizeProfile {
        let mut p = SizeProfile::new();
        for _ in 0..10_000 {
            p.record(24);
        }
        for _ in 0..5_000 {
            p.record(40);
        }
        for _ in 0..100 {
            p.record(333);
        }
        p
    }

    #[test]
    fn hot_sizes_get_exact_classes_with_zero_waste() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut c = Custom::from_profile(&mut ctx, &profiled()).unwrap();
        c.malloc(24, &mut ctx).unwrap();
        assert_eq!(c.stats().live_granted, 24, "exact class: zero internal fragmentation");
        c.malloc(40, &mut ctx).unwrap();
        assert_eq!(c.stats().live_granted, 64);
    }

    #[test]
    fn objects_carry_no_header() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut c = Custom::from_profile(&mut ctx, &profiled()).unwrap();
        let a = c.malloc(24, &mut ctx).unwrap();
        let b = c.malloc(24, &mut ctx).unwrap();
        assert_eq!(b - a, 24, "exact-size fragments are densely packed");
    }

    #[test]
    fn reuse_is_immediate_and_exact() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut c = Custom::from_profile(&mut ctx, &profiled()).unwrap();
        let a = c.malloc(24, &mut ctx).unwrap();
        c.free(a, &mut ctx).unwrap();
        assert_eq!(c.malloc(24, &mut ctx).unwrap(), a);
    }

    #[test]
    fn large_requests_and_unprofiled_sizes_work() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut c = Custom::from_profile(&mut ctx, &profiled()).unwrap();
        let big = c.malloc(10_000, &mut ctx).unwrap();
        let odd = c.malloc(777, &mut ctx).unwrap();
        c.free(big, &mut ctx).unwrap();
        c.free(odd, &mut ctx).unwrap();
        assert_eq!(c.stats().live_granted, 0);
    }

    #[test]
    fn bounded_policy_without_profile_also_works() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let map = SizeMap::bounded_fragmentation(0.25);
        let mut c = Custom::with_size_map(&mut ctx, map).unwrap();
        let mut live = Vec::new();
        for i in 1..=300u32 {
            live.push(c.malloc(i * 7 % 2500 + 1, &mut ctx).unwrap());
        }
        for p in live {
            c.free(p, &mut ctx).unwrap();
        }
        assert_eq!(c.stats().live_objects(), 0);
        assert_eq!(c.stats().live_granted, 0);
    }

    #[test]
    fn malloc_cost_is_small_and_constant_when_warm() {
        let mut fx = Fx::new();
        {
            let mut ctx = fx.ctx();
            let mut c = Custom::from_profile(&mut ctx, &profiled()).unwrap();
            // Keep one object live so the class's chunk is never
            // reclaimed between operations.
            let _hold = c.malloc(24, &mut ctx).unwrap();
            let a = c.malloc(24, &mut ctx).unwrap();
            c.free(a, &mut ctx).unwrap();
            let before = fx.instrs.total();
            let mut ctx = fx.ctx();
            let b = c.malloc(24, &mut ctx).unwrap();
            let cost = fx.instrs.total() - before;
            assert_eq!(a, b);
            assert!(cost < 30, "warm Custom malloc took {cost} instructions");
        }
    }
}
