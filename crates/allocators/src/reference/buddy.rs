//! `BUDDY`: binary buddy system — the third category of Standish's
//! taxonomy.
//!
//! §2.1 of the paper divides DSA algorithms into "sequential-fit
//! algorithms (e.g., first-fit and best-fit), buddy-system methods
//! (e.g., binary-buddy and Fibonacci), and segregated-storage
//! algorithms". The paper measures the first and third categories; this
//! implementation completes the taxonomy so the locality comparison can
//! cover all three.
//!
//! Binary buddy splits power-of-two blocks recursively and merges a
//! freed block with its *buddy* (the block at `address XOR size`)
//! whenever both are free, restoring larger blocks without searching.
//! It thus sits between the extremes: constant-time class-indexed
//! allocation like segregated storage, aggressive coalescing like the
//! sequential fits — at the cost of power-of-two internal fragmentation
//! (worse than BSD's, since the header burns into the next size class).
//!
//! Layout per block: a one-word header (`order | allocated`), and, when
//! free, doubly-linked list links in the first payload words. Storage is
//! claimed in [`SEGMENT`]-byte segments aligned to their own size so the
//! XOR buddy arithmetic holds.

use sim_mem::{Address, MemCtx};

use crate::{AllocError, AllocStats, Allocator};

/// Smallest block: 2^4 = 16 bytes (12-byte payload).
pub const MIN_ORDER: u32 = 4;

/// Largest block = segment size: 2^20 = 1 MiB.
pub const MAX_ORDER: u32 = 20;

/// Storage is claimed from the operating system in aligned segments of
/// this many bytes.
pub const SEGMENT: u64 = 1 << MAX_ORDER;

const NORDERS: usize = (MAX_ORDER - MIN_ORDER + 1) as usize;
const HDR: u64 = 4;
const F_ALLOC: u32 = 1;

/// The binary buddy allocator. See the module docs.
#[derive(Debug)]
pub struct Buddy {
    /// Static area: one list-head word per order (0 = empty).
    heads: Address,
    stats: AllocStats,
}

impl Buddy {
    /// Creates a buddy allocator, reserving its order-list heads.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the static area cannot be reserved.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        let heads = ctx.sbrk(NORDERS as u64 * 4)?;
        for i in 0..NORDERS {
            ctx.store(heads + i as u64 * 4, 0);
        }
        Ok(Buddy { heads, stats: AllocStats::new() })
    }

    /// The order serving a payload of `size` bytes, or `None` if it
    /// exceeds a whole segment.
    pub fn order_for(size: u32) -> Option<u32> {
        let total = u64::from(size.max(1)) + HDR;
        let order = total.next_power_of_two().trailing_zeros().max(MIN_ORDER);
        (order <= MAX_ORDER).then_some(order)
    }

    fn head_addr(&self, order: u32) -> Address {
        self.heads + u64::from(order - MIN_ORDER) * 4
    }

    /// Pushes a free block onto its order list (head insert).
    fn push(&mut self, b: Address, order: u32, ctx: &mut MemCtx<'_>) {
        ctx.store(b, order << 1); // header: order, free
        let head = self.head_addr(order);
        let old = ctx.load(head);
        ctx.store(b + 4, old); // next
        ctx.store(b + 8, 0); // prev
        if old != 0 {
            ctx.store(Address::new(u64::from(old)) + 8, b.raw() as u32);
        }
        ctx.store(head, b.raw() as u32);
        ctx.ops(2);
    }

    /// Unlinks a specific free block from its order list.
    fn unlink(&mut self, b: Address, order: u32, ctx: &mut MemCtx<'_>) {
        let next = ctx.load(b + 4);
        let prev = ctx.load(b + 8);
        if prev == 0 {
            ctx.store(self.head_addr(order), next);
        } else {
            ctx.store(Address::new(u64::from(prev)) + 4, next);
        }
        if next != 0 {
            ctx.store(Address::new(u64::from(next)) + 8, prev);
        }
        ctx.ops(2);
    }

    /// Pops the head of an order list, if any.
    fn pop(&mut self, order: u32, ctx: &mut MemCtx<'_>) -> Option<Address> {
        let head = self.head_addr(order);
        let b = ctx.load(head);
        ctx.ops(1);
        if b == 0 {
            return None;
        }
        let b = Address::new(u64::from(b));
        let next = ctx.load(b + 4);
        ctx.store(head, next);
        if next != 0 {
            ctx.store(Address::new(u64::from(next)) + 8, 0);
        }
        Some(b)
    }

    /// Claims a fresh aligned segment and returns it as one max-order
    /// free block.
    fn grow(&mut self, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let brk = ctx.heap().brk().raw();
        let aligned = brk.div_ceil(SEGMENT) * SEGMENT;
        if aligned > brk {
            ctx.sbrk(aligned - brk)?;
        }
        let seg = ctx.sbrk(SEGMENT)?;
        debug_assert_eq!(seg.raw() % SEGMENT, 0);
        Ok(seg)
    }

    /// Finds a block of at least `order`, splitting larger blocks down.
    fn acquire(&mut self, order: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        // Find the smallest non-empty order at or above the request.
        // Each order probed counts as one search visit: the buddy
        // "search" is a bounded walk up the order lists, not a freelist
        // scan, and the histogram records exactly that.
        let mut found = None;
        for o in order..=MAX_ORDER {
            ctx.ops(1);
            self.stats.search_visits += 1;
            if let Some(b) = self.pop(o, ctx) {
                found = Some((b, o));
                break;
            }
        }
        let (block, mut o) = match found {
            Some(f) => f,
            None => (self.grow(ctx)?, MAX_ORDER),
        };
        // Split down, pushing the upper halves.
        while o > order {
            o -= 1;
            let buddy = block + (1u64 << o);
            self.push(buddy, o, ctx);
            ctx.ops(2);
        }
        Ok(block)
    }
}

impl Allocator for Buddy {
    fn name(&self) -> &'static str {
        "Buddy"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let order = Self::order_for(size).ok_or(AllocError::Unsupported(size))?;
        ctx.ops(4);
        let visits_before = self.stats.search_visits;
        let block = self.acquire(order, ctx)?;
        ctx.store(block, order << 1 | F_ALLOC);
        ctx.obs_observe("alloc.search_len", self.stats.search_visits - visits_before);
        self.stats.note_malloc(size, 1 << order);
        Ok(block + HDR)
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if ptr.raw() < HDR || !ctx.heap().contains(ptr - HDR, HDR) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let mut block = ptr - HDR;
        let header = ctx.load(block);
        ctx.ops(3);
        let mut order = header >> 1;
        if header & F_ALLOC == 0 || !(MIN_ORDER..=MAX_ORDER).contains(&order) {
            return Err(AllocError::InvalidFree(ptr));
        }
        if !block.raw().is_multiple_of(1u64 << order) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let granted = 1u32 << order;
        let merges_before = self.stats.coalesces;
        // Merge with free buddies as far as possible.
        while order < MAX_ORDER {
            let buddy = Address::new(block.raw() ^ (1u64 << order));
            if !ctx.heap().contains(buddy, 1u64 << order) {
                break;
            }
            let bh = ctx.load(buddy);
            ctx.ops(3);
            // The buddy must be a free block of exactly this order.
            if bh & F_ALLOC != 0 || bh >> 1 != order {
                break;
            }
            self.unlink(buddy, order, ctx);
            block = Address::new(block.raw() & !(1u64 << order));
            order += 1;
            self.stats.coalesces += 1;
        }
        self.push(block, order, ctx);
        ctx.obs_observe("alloc.coalesce_per_free", self.stats.coalesces - merges_before);
        self.stats.note_free(granted);
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    #[test]
    fn order_mapping_includes_header() {
        assert_eq!(Buddy::order_for(1), Some(4)); // 5 -> 16
        assert_eq!(Buddy::order_for(12), Some(4)); // 16 -> 16
        assert_eq!(Buddy::order_for(13), Some(5)); // 17 -> 32
        assert_eq!(Buddy::order_for(60), Some(6)); // 64 -> 64
        assert_eq!(Buddy::order_for(61), Some(7)); // 65 -> 128
        assert_eq!(Buddy::order_for(u32::MAX), None);
    }

    #[test]
    fn blocks_are_naturally_aligned() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut b = Buddy::new(&mut ctx).unwrap();
        for size in [12u32, 28, 60, 1000, 60_000] {
            let p = b.malloc(size, &mut ctx).unwrap();
            let order = Buddy::order_for(size).unwrap();
            assert_eq!((p - HDR).raw() % (1u64 << order), 0, "size {size}");
        }
    }

    #[test]
    fn split_and_merge_round_trip() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut b = Buddy::new(&mut ctx).unwrap();
        // Allocate two 16-byte buddies out of a split 32-byte block.
        let p1 = b.malloc(12, &mut ctx).unwrap();
        let p2 = b.malloc(12, &mut ctx).unwrap();
        assert_eq!((p1 - HDR).raw() ^ 16, (p2 - HDR).raw(), "adjacent buddies");
        b.free(p1, &mut ctx).unwrap();
        assert_eq!(b.stats().coalesces, 0);
        b.free(p2, &mut ctx).unwrap();
        // Freeing the second merges all the way back to the segment.
        assert_eq!(b.stats().coalesces as u32, MAX_ORDER - MIN_ORDER);
        // The rebuilt max-order block serves a huge request without
        // growing the heap.
        let high = ctx.heap().in_use();
        b.malloc(500_000, &mut ctx).unwrap();
        assert_eq!(ctx.heap().in_use(), high);
    }

    #[test]
    fn partial_merge_stops_at_allocated_buddy() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut b = Buddy::new(&mut ctx).unwrap();
        let p1 = b.malloc(12, &mut ctx).unwrap();
        let _p2 = b.malloc(12, &mut ctx).unwrap();
        let p3 = b.malloc(12, &mut ctx).unwrap();
        b.free(p1, &mut ctx).unwrap();
        b.free(p3, &mut ctx).unwrap();
        // p2 still live: no merges possible (p1's buddy is p2; p3's buddy
        // is a free 16B block only if aligned — at most limited merging).
        let reuse = b.malloc(12, &mut ctx).unwrap();
        assert!(reuse == p1 || reuse == p3, "freed blocks are recycled");
    }

    #[test]
    fn internal_fragmentation_exceeds_bsd() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut b = Buddy::new(&mut ctx).unwrap();
        // A 64-byte request needs 68 with header -> 128-byte block.
        b.malloc(64, &mut ctx).unwrap();
        assert_eq!(b.stats().live_granted, 128);
    }

    #[test]
    fn churn_balances_and_merges() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut b = Buddy::new(&mut ctx).unwrap();
        let mut live = Vec::new();
        for i in 0..500u32 {
            live.push(b.malloc(8 + (i * 37) % 5000, &mut ctx).unwrap());
            if i % 2 == 1 {
                let victim = live.swap_remove((i as usize * 11) % live.len());
                b.free(victim, &mut ctx).unwrap();
            }
        }
        for p in live {
            b.free(p, &mut ctx).unwrap();
        }
        assert_eq!(b.stats().live_objects(), 0);
        assert_eq!(b.stats().live_granted, 0);
        assert!(b.stats().coalesces > 0);
        // Everything merged back: one max-order block per claimed
        // segment on the order-20 list.
        let mut segments = 0;
        let mut cur = ctx.peek(b.head_addr(MAX_ORDER));
        while cur != 0 {
            segments += 1;
            cur = ctx.peek(Address::new(u64::from(cur)) + 4);
        }
        assert!(segments >= 1, "all space returns to whole segments");
    }

    #[test]
    fn double_free_detected() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut b = Buddy::new(&mut ctx).unwrap();
        let p = b.malloc(40, &mut ctx).unwrap();
        b.free(p, &mut ctx).unwrap();
        assert!(matches!(b.free(p, &mut ctx), Err(AllocError::InvalidFree(_))));
    }
}
