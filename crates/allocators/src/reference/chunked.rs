//! Page-chunk storage machinery shared by [`crate::GnuLocal`] and
//! [`crate::Custom`].
//!
//! The heap is carved into 4096-byte *chunks*. A descriptor table — the
//! `_heapinfo` array of Haertel's GNU malloc — lives in the heap itself
//! and records, for every chunk, whether it is free, reserved, part of a
//! multi-chunk ("large") allocation, or split into equal-size fragments
//! of one class. Small allocations are fragments; their class is found
//! from the *chunk descriptor*, not from a per-object boundary tag, which
//! is how these allocators avoid the 8-byte per-object overhead the paper
//! examines in Table 6.
//!
//! The key locality property: all searching (for free chunks or chunk
//! runs) walks the dense descriptor table, never the heap blocks
//! themselves. "Instead of traversing the entire heap attempting to find
//! a fit, only the information in the chunk headers must be traversed."

use sim_mem::{Address, MemCtx};

use crate::{AllocError, AllocStats};

/// What to do when every fragment of a chunk becomes free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PurgePolicy {
    /// Unlink the fragments and return the chunk to the pool immediately,
    /// as Haertel's GNU malloc does. Simple, but a class whose live count
    /// hovers at a chunk boundary thrashes: each free purges the page and
    /// the next allocation re-carves it.
    Eager,
    /// Keep up to this many fully-free carved chunks per class before
    /// purging — the hysteresis modern segregated allocators use.
    Retain(u32),
}

/// Chunk size in bytes (one VM page, as in GNU malloc's `BLOCKSIZE`).
pub const CHUNK: u32 = 4096;

/// Largest fragment size; anything bigger is a whole-chunk allocation.
pub const FRAG_MAX: u32 = CHUNK / 2;

/// Descriptor status words.
pub mod status {
    /// Chunk is free for reuse.
    pub const FREE: u32 = 0;
    /// Chunk belongs to a foreign allocator, the table, or padding.
    pub const RESERVED: u32 = 1;
    /// First chunk of a large allocation (aux = number of chunks).
    pub const LARGE_START: u32 = 2;
    /// Continuation chunk of a large allocation.
    pub const LARGE_CONT: u32 = 3;
    /// Chunk fragmented into class `status - FRAG_BASE` fragments
    /// (aux = number of free fragments).
    pub const FRAG_BASE: u32 = 16;
}

/// The chunk-granular heap with an in-heap descriptor table and one
/// fragment freelist per size class.
///
/// Fragment freelists are doubly-linked NULL-terminated lists threaded
/// through the free fragments themselves (`next` at +0, `prev` at +4),
/// with one head word per class in the static area.
#[derive(Debug)]
pub struct ChunkedHeap {
    /// Fragment size (bytes, word multiple, ≥ 8, ≤ [`FRAG_MAX`]) per class.
    class_sizes: Vec<u32>,
    /// Static area: one fragment list-head word per class.
    fragheads: Address,
    /// Descriptor table base (2 words per chunk).
    table: Address,
    /// Chunks occupied by the table itself.
    table_chunks: u32,
    /// Descriptor capacity (chunks representable).
    cap: u32,
    /// One past the highest initialized chunk index.
    frontier: u32,
    /// Lowest possibly-free chunk index (search start hint).
    hint: u32,
    /// Base address of the heap (chunk index 0).
    base: Address,
    /// Empty-chunk handling.
    policy: PurgePolicy,
    /// Fully-free carved chunks currently retained, per class.
    retained: Vec<u32>,
    stats: AllocStats,
}

impl ChunkedHeap {
    /// Creates a chunked heap with the given fragment classes (must be
    /// word multiples in `8..=FRAG_MAX`, strictly increasing), reserving
    /// the fragment heads and the initial one-chunk descriptor table.
    ///
    /// # Panics
    ///
    /// Panics if the class sizes are not strictly increasing word
    /// multiples within range.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata cannot be reserved.
    pub fn new(ctx: &mut MemCtx<'_>, class_sizes: Vec<u32>) -> Result<Self, AllocError> {
        Self::with_policy(ctx, class_sizes, PurgePolicy::Eager)
    }

    /// Creates a chunked heap with an explicit empty-chunk policy.
    ///
    /// # Panics
    ///
    /// Panics if the class sizes are not strictly increasing word
    /// multiples within range.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the metadata cannot be reserved.
    pub fn with_policy(
        ctx: &mut MemCtx<'_>,
        class_sizes: Vec<u32>,
        policy: PurgePolicy,
    ) -> Result<Self, AllocError> {
        assert!(!class_sizes.is_empty(), "at least one fragment class");
        for w in class_sizes.windows(2) {
            assert!(w[0] < w[1], "class sizes strictly increasing");
        }
        for &s in &class_sizes {
            assert!((8..=FRAG_MAX).contains(&s) && s % 4 == 0, "bad class size {s}");
        }
        let base = ctx.heap().base();
        let fragheads = ctx.sbrk(class_sizes.len() as u64 * 4)?;
        for c in 0..class_sizes.len() {
            ctx.store(fragheads + c as u64 * 4, 0);
        }
        let retained = vec![0; class_sizes.len()];
        let mut heap = ChunkedHeap {
            class_sizes,
            fragheads,
            table: Address::NULL,
            table_chunks: 0,
            cap: 0,
            frontier: 0,
            hint: 0,
            base,
            policy,
            retained,
            stats: AllocStats::new(),
        };
        heap.grow_table(1, ctx)?;
        Ok(heap)
    }

    /// The configured fragment class sizes.
    pub fn class_sizes(&self) -> &[u32] {
        &self.class_sizes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Mutable statistics (wrappers record requested sizes themselves).
    pub fn stats_mut(&mut self) -> &mut AllocStats {
        &mut self.stats
    }

    fn chunk_index(&self, a: Address) -> u32 {
        ((a - self.base) / u64::from(CHUNK)) as u32
    }

    fn chunk_base(&self, idx: u32) -> Address {
        self.base + u64::from(idx) * u64::from(CHUNK)
    }

    fn desc_addr(&self, idx: u32) -> Address {
        self.table + u64::from(idx) * 8
    }

    fn read_status(&self, idx: u32, ctx: &mut MemCtx<'_>) -> u32 {
        ctx.load(self.desc_addr(idx))
    }

    fn write_status(&self, idx: u32, v: u32, ctx: &mut MemCtx<'_>) {
        ctx.store(self.desc_addr(idx), v);
    }

    fn read_aux(&self, idx: u32, ctx: &mut MemCtx<'_>) -> u32 {
        ctx.load(self.desc_addr(idx) + 4)
    }

    fn write_aux(&self, idx: u32, v: u32, ctx: &mut MemCtx<'_>) {
        ctx.store(self.desc_addr(idx) + 4, v);
    }

    fn frag_head(&self, class: usize) -> Address {
        self.fragheads + class as u64 * 4
    }

    fn frags_per_chunk(&self, class: usize) -> u32 {
        CHUNK / self.class_sizes[class]
    }

    /// Grows the heap to the next chunk boundary and claims `n` aligned
    /// chunks, initializing descriptors for any skipped foreign space.
    /// Returns the first claimed chunk index.
    fn claim_chunks(&mut self, n: u32, ctx: &mut MemCtx<'_>) -> Result<u32, AllocError> {
        ctx.ops(3);
        // Growing the table moves the break, which moves our aligned
        // start; iterate until the table covers the claim.
        let start_idx = loop {
            let brk = ctx.heap().brk().raw();
            let aligned = brk.div_ceil(u64::from(CHUNK)) * u64::from(CHUNK);
            let start_idx = self.chunk_index(Address::new(aligned));
            if start_idx + n <= self.cap {
                break start_idx;
            }
            self.ensure_cap(start_idx + n, ctx)?;
        };
        let brk = ctx.heap().brk().raw();
        let aligned = brk.div_ceil(u64::from(CHUNK)) * u64::from(CHUNK);
        let pad = aligned - brk;
        if pad > 0 {
            ctx.sbrk(pad)?;
        }
        ctx.sbrk(u64::from(n) * u64::from(CHUNK))?;
        // Descriptors for space between our last frontier and the new
        // region belong to someone else (or padding): mark reserved.
        for idx in self.frontier..start_idx {
            self.write_status(idx, status::RESERVED, ctx);
        }
        self.frontier = start_idx + n;
        Ok(start_idx)
    }

    /// Ensures the descriptor table covers at least `needed` chunks,
    /// doubling (and relocating) it as required — the traced analogue of
    /// GNU malloc reallocating `_heapinfo`.
    fn ensure_cap(&mut self, needed: u32, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if needed <= self.cap {
            return Ok(());
        }
        let mut chunks = self.table_chunks.max(1);
        while chunks * (CHUNK / 8) < needed {
            chunks *= 2;
        }
        self.grow_table(chunks, ctx)
    }

    /// Allocates a fresh `chunks`-chunk table at the frontier, copies the
    /// old descriptors, and frees the old table's chunks. The table is
    /// enlarged further if needed so that it can describe its own chunks
    /// (the heap may already extend far beyond the requested capacity
    /// when other allocators share the address space).
    fn grow_table(&mut self, chunks: u32, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        let brk = ctx.heap().brk().raw();
        let aligned = brk.div_ceil(u64::from(CHUNK)) * u64::from(CHUNK);
        let pad = aligned - brk;
        let new_start = self.chunk_index(Address::new(aligned));
        let mut chunks = chunks.max(1);
        while new_start + chunks > chunks * (CHUNK / 8) {
            chunks *= 2;
        }
        if pad > 0 {
            ctx.sbrk(pad)?;
        }
        let new_table = ctx.sbrk(u64::from(chunks) * u64::from(CHUNK))?;
        let new_cap = chunks * (CHUNK / 8);
        let old_table = self.table;
        let old_cap = self.cap;
        let old_chunks = self.table_chunks;
        // Copy live descriptors (2 words each): real, traced work.
        for i in 0..self.frontier.min(old_cap) {
            let s = ctx.load(old_table + u64::from(i) * 8);
            let a = ctx.load(old_table + u64::from(i) * 8 + 4);
            ctx.store(new_table + u64::from(i) * 8, s);
            ctx.store(new_table + u64::from(i) * 8 + 4, a);
        }
        self.table = new_table;
        self.cap = new_cap;
        self.table_chunks = chunks;
        // Mark everything from the old frontier up to and including the
        // new table's own chunks.
        let new_start = self.chunk_index(new_table);
        for idx in self.frontier..new_start {
            self.write_status(idx, status::RESERVED, ctx);
        }
        for idx in new_start..new_start + chunks {
            self.write_status(idx, status::RESERVED, ctx);
        }
        self.frontier = new_start + chunks;
        // The old table's chunks become ordinary free chunks.
        if old_chunks > 0 {
            let old_start = self.chunk_index(old_table);
            for idx in old_start..old_start + old_chunks {
                self.write_status(idx, status::FREE, ctx);
            }
            self.hint = self.hint.min(old_start);
        }
        Ok(())
    }

    /// First-fit scan of the descriptor table for a run of `n` free
    /// chunks; claims fresh chunks if none. This is the localized search
    /// that replaces heap-block traversal.
    fn take_chunk_run(&mut self, n: u32, ctx: &mut MemCtx<'_>) -> Result<u32, AllocError> {
        let mut i = self.hint;
        let mut run = 0u32;
        let mut first_free: Option<u32> = None;
        ctx.ops(2);
        while i < self.frontier {
            let s = self.read_status(i, ctx);
            ctx.ops(2);
            if s == status::FREE {
                if first_free.is_none() {
                    first_free = Some(i);
                }
                run += 1;
                if run == n {
                    let start = i + 1 - n;
                    if Some(start) == first_free && start == self.hint {
                        self.hint = i + 1;
                    }
                    return Ok(start);
                }
            } else {
                run = 0;
            }
            i += 1;
        }
        self.claim_chunks(n, ctx)
    }

    /// Splits the free chunk `idx` into fragments of `class`, threading
    /// them all onto the class freelist (touching every fragment — the
    /// cold cost of dedicating a page to a class).
    fn carve_chunk(&mut self, idx: u32, class: usize, ctx: &mut MemCtx<'_>) {
        let fsize = self.class_sizes[class];
        let n = self.frags_per_chunk(class);
        let base = self.chunk_base(idx);
        let head = self.frag_head(class);
        let old = ctx.load(head);
        ctx.ops(3);
        for i in 0..n {
            let f = base + u64::from(i * fsize);
            let next = if i + 1 < n { (f + u64::from(fsize)).raw() as u32 } else { old };
            let prev = if i == 0 { 0 } else { (f - u64::from(fsize)).raw() as u32 };
            ctx.store(f, next);
            ctx.store(f + 4, prev);
            ctx.ops(2);
        }
        if old != 0 {
            ctx.store(
                Address::new(u64::from(old)) + 4,
                (base + u64::from((n - 1) * fsize)).raw() as u32,
            );
        }
        ctx.store(head, base.raw() as u32);
        self.write_status(idx, status::FRAG_BASE + class as u32, ctx);
        self.write_aux(idx, n, ctx);
    }

    /// Allocates one fragment of `class`. Returns its address; the
    /// granted size is the class size.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if a fresh chunk cannot be claimed.
    pub fn alloc_frag(
        &mut self,
        class: usize,
        ctx: &mut MemCtx<'_>,
    ) -> Result<Address, AllocError> {
        debug_assert!(class < self.class_sizes.len());
        let head = self.frag_head(class);
        let mut f = ctx.load(head);
        ctx.ops(2);
        if f == 0 {
            let idx = self.take_chunk_run(1, ctx)?;
            self.carve_chunk(idx, class, ctx);
            f = ctx.load(head);
        }
        let frag = Address::new(u64::from(f));
        // Pop from the head.
        let next = ctx.load(frag);
        ctx.store(head, next);
        if next != 0 {
            ctx.store(Address::new(u64::from(next)) + 4, 0);
        }
        // Account in the chunk descriptor.
        let idx = self.chunk_index(frag);
        let nfree = self.read_aux(idx, ctx);
        if nfree == self.frags_per_chunk(class) {
            // A retained fully-free chunk is back in service.
            self.retained[class] = self.retained[class].saturating_sub(1);
        }
        self.write_aux(idx, nfree - 1, ctx);
        ctx.ops(4);
        Ok(frag)
    }

    /// Allocates `size` bytes as a run of whole chunks (first fit over
    /// the descriptor table). Returns the chunk-aligned address.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the heap limit is exceeded.
    pub fn alloc_large(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let n = size.max(1).div_ceil(CHUNK);
        let start = self.take_chunk_run(n, ctx)?;
        self.write_status(start, status::LARGE_START, ctx);
        self.write_aux(start, n, ctx);
        for idx in start + 1..start + n {
            self.write_status(idx, status::LARGE_CONT, ctx);
        }
        Ok(self.chunk_base(start))
    }

    /// Frees the fragment or large block at `ptr`, identified purely via
    /// the chunk descriptor. Returns the granted bytes released.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidFree`] if `ptr` does not denote a
    /// live fragment or the start of a large allocation.
    pub fn free_at(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<u32, AllocError> {
        if ptr < self.base || ptr >= self.chunk_base(self.frontier) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let idx = self.chunk_index(ptr);
        let s = self.read_status(idx, ctx);
        ctx.ops(3);
        if s >= status::FRAG_BASE {
            let class = (s - status::FRAG_BASE) as usize;
            if class >= self.class_sizes.len() {
                return Err(AllocError::InvalidFree(ptr));
            }
            let fsize = self.class_sizes[class];
            if !(ptr - self.chunk_base(idx)).is_multiple_of(u64::from(fsize)) {
                return Err(AllocError::InvalidFree(ptr));
            }
            self.free_frag(ptr, idx, class, ctx)?;
            Ok(fsize)
        } else if s == status::LARGE_START {
            if ptr != self.chunk_base(idx) {
                return Err(AllocError::InvalidFree(ptr));
            }
            let n = self.read_aux(idx, ctx);
            for i in idx..idx + n {
                self.write_status(i, status::FREE, ctx);
            }
            self.hint = self.hint.min(idx);
            ctx.ops(2);
            Ok(n * CHUNK)
        } else {
            Err(AllocError::InvalidFree(ptr))
        }
    }

    fn free_frag(
        &mut self,
        f: Address,
        idx: u32,
        class: usize,
        ctx: &mut MemCtx<'_>,
    ) -> Result<(), AllocError> {
        let n = self.frags_per_chunk(class);
        let nfree = self.read_aux(idx, ctx);
        if nfree >= n {
            return Err(AllocError::InvalidFree(f));
        }
        // Push onto the class list.
        let head = self.frag_head(class);
        let old = ctx.load(head);
        ctx.store(f, old);
        ctx.store(f + 4, 0);
        if old != 0 {
            ctx.store(Address::new(u64::from(old)) + 4, f.raw() as u32);
        }
        ctx.store(head, f.raw() as u32);
        ctx.ops(3);
        if nfree + 1 == n {
            let keep = match self.policy {
                PurgePolicy::Eager => false,
                PurgePolicy::Retain(limit) => self.retained[class] < limit,
            };
            if keep {
                // Leave the chunk carved; its fragments stay on the list.
                self.retained[class] += 1;
                self.write_aux(idx, n, ctx);
            } else {
                // Whole chunk free: unlink its fragments, release it.
                self.purge_chunk(idx, class, ctx);
            }
        } else {
            self.write_aux(idx, nfree + 1, ctx);
        }
        Ok(())
    }

    /// Unlinks every fragment of chunk `idx` from the class list and
    /// marks the chunk free — touching the whole page, as the original
    /// does when a fragmented block empties.
    fn purge_chunk(&mut self, idx: u32, class: usize, ctx: &mut MemCtx<'_>) {
        let fsize = self.class_sizes[class];
        let n = self.frags_per_chunk(class);
        let base = self.chunk_base(idx);
        let head = self.frag_head(class);
        for i in 0..n {
            let f = base + u64::from(i * fsize);
            let next = ctx.load(f);
            let prev = ctx.load(f + 4);
            if prev == 0 {
                ctx.store(head, next);
            } else {
                ctx.store(Address::new(u64::from(prev)), next);
            }
            if next != 0 {
                ctx.store(Address::new(u64::from(next)) + 4, prev);
            }
            ctx.ops(2);
        }
        self.write_status(idx, status::FREE, ctx);
        self.hint = self.hint.min(idx);
    }

    /// Number of free chunks currently recorded (diagnostic; walks the
    /// table untraced).
    pub fn free_chunks(&self, ctx: &MemCtx<'_>) -> u32 {
        (0..self.frontier).filter(|&i| ctx.peek(self.desc_addr(i)) == status::FREE).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    fn classes() -> Vec<u32> {
        vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048]
    }

    #[test]
    fn fragment_alloc_free_recycles_within_chunk() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ch = ChunkedHeap::new(&mut ctx, classes()).unwrap();
        let a = ch.alloc_frag(2, &mut ctx).unwrap(); // 32-byte class
        let b = ch.alloc_frag(2, &mut ctx).unwrap();
        assert_eq!(b - a, 32, "fragments carved sequentially");
        ch.free_at(a, &mut ctx).unwrap();
        assert_eq!(ch.alloc_frag(2, &mut ctx).unwrap(), a, "LIFO fragment reuse");
    }

    #[test]
    fn emptied_chunk_returns_to_pool_and_is_reused() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ch = ChunkedHeap::new(&mut ctx, classes()).unwrap();
        // Fill one chunk of 1024-byte fragments (4 per chunk).
        let frags: Vec<_> = (0..4).map(|_| ch.alloc_frag(7, &mut ctx).unwrap()).collect();
        let high = ctx.heap().in_use();
        for f in &frags {
            ch.free_at(*f, &mut ctx).unwrap();
        }
        assert_eq!(ch.free_chunks(&ctx), 1);
        // A different class reuses the chunk without growing the heap.
        ch.alloc_frag(0, &mut ctx).unwrap();
        assert_eq!(ctx.heap().in_use(), high);
    }

    #[test]
    fn large_allocations_take_chunk_runs() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ch = ChunkedHeap::new(&mut ctx, classes()).unwrap();
        let p = ch.alloc_large(10000, &mut ctx).unwrap();
        assert_eq!(p.raw() % u64::from(CHUNK), 0);
        let granted = ch.free_at(p, &mut ctx).unwrap();
        assert_eq!(granted, 3 * CHUNK);
        // The 3-chunk run is reused by the next large request.
        let q = ch.alloc_large(8192, &mut ctx).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn large_and_frag_coexist() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ch = ChunkedHeap::new(&mut ctx, classes()).unwrap();
        let a = ch.alloc_frag(1, &mut ctx).unwrap();
        let big = ch.alloc_large(5000, &mut ctx).unwrap();
        let b = ch.alloc_frag(1, &mut ctx).unwrap();
        assert_eq!(ch.free_at(a, &mut ctx).unwrap(), 16);
        assert_eq!(ch.free_at(big, &mut ctx).unwrap(), 2 * CHUNK);
        assert_eq!(ch.free_at(b, &mut ctx).unwrap(), 16);
    }

    #[test]
    fn invalid_frees_rejected() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ch = ChunkedHeap::new(&mut ctx, classes()).unwrap();
        let a = ch.alloc_frag(0, &mut ctx).unwrap();
        // Misaligned fragment pointer.
        assert!(matches!(ch.free_at(a + 2, &mut ctx), Err(AllocError::InvalidFree(_))));
        // Pointer into the descriptor table (reserved chunk).
        let table_ptr = ch.table;
        assert!(matches!(ch.free_at(table_ptr, &mut ctx), Err(AllocError::InvalidFree(_))));
        // Out of range.
        assert!(matches!(
            ch.free_at(Address::new(0x9999_9999), &mut ctx),
            Err(AllocError::InvalidFree(_))
        ));
        ch.free_at(a, &mut ctx).unwrap();
    }

    #[test]
    fn table_growth_preserves_descriptors() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ch = ChunkedHeap::new(&mut ctx, classes()).unwrap();
        // Force coverage past the initial 512-chunk table: allocate a
        // large run of 600 chunks (~2.4 MB).
        let p = ch.alloc_large(600 * CHUNK, &mut ctx).unwrap();
        let a = ch.alloc_frag(0, &mut ctx).unwrap();
        assert!(ch.cap >= 600);
        assert_eq!(ch.free_at(p, &mut ctx).unwrap(), 600 * CHUNK);
        assert_eq!(ch.free_at(a, &mut ctx).unwrap(), 8);
    }

    #[test]
    fn descriptor_search_reuses_before_growing() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut ch = ChunkedHeap::new(&mut ctx, classes()).unwrap();
        let a = ch.alloc_large(CHUNK, &mut ctx).unwrap();
        let b = ch.alloc_large(CHUNK, &mut ctx).unwrap();
        let c = ch.alloc_large(CHUNK, &mut ctx).unwrap();
        ch.free_at(a, &mut ctx).unwrap();
        ch.free_at(b, &mut ctx).unwrap();
        ch.free_at(c, &mut ctx).unwrap();
        let high = ctx.heap().in_use();
        // A 3-chunk request is satisfied by the coalesced-by-adjacency
        // run of freed single chunks.
        let big = ch.alloc_large(3 * CHUNK, &mut ctx).unwrap();
        assert_eq!(big, a);
        assert_eq!(ctx.heap().in_use(), high);
    }
}
