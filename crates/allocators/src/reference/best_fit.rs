//! `BESTFIT`: the other classic sequential-fit allocator.
//!
//! The paper's conclusions indict the whole family: "allocators based on
//! sequential-fit methods, such as first-fit, best-fit, etc, have poor
//! reference locality". FIRSTFIT is measured directly; `BestFit` is
//! provided so the claim can be checked for the rest of the family and
//! so the ablation benches can compare placement policies under
//! identical block layout.
//!
//! The implementation shares [`crate::FirstFit`]'s machinery — one
//! doubly-linked freelist, boundary tags, splitting, coalescing — but
//! `malloc` always scans the *entire* freelist and takes the smallest
//! block that fits (ties to the first found). Exact fits stop the scan
//! early, the standard optimization. Best fit touches every free block
//! on every miss-sized allocation, so its reference locality is even
//! worse than first fit's, while its placement minimizes split waste.

use sim_mem::{Address, MemCtx};

use crate::layout::{
    encode, list, read_header, read_prev_footer, round_payload, tag_allocated, tag_size,
    write_tags, F_ALLOC, MIN_BLOCK, TAG, TAG_OVERHEAD,
};
use crate::{AllocError, AllocStats, Allocator};

/// The classic best-fit allocator. See the module docs.
#[derive(Debug)]
pub struct BestFit {
    /// Sentinel head of the circular freelist (lives in the static area).
    head: Address,
    /// One past our epilogue word (for discontiguous-extension detection).
    top_end: Address,
    /// Minimum remainder payload for a split to happen.
    split_threshold: u32,
    stats: AllocStats,
}

impl BestFit {
    /// Creates a best-fit allocator, reserving its static area and heap
    /// sentinels.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the initial reservation fails.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        let head = ctx.sbrk(list::SENTINEL_BYTES)?;
        list::init_head(ctx, head);
        let prologue = ctx.sbrk(TAG)?;
        ctx.store(prologue, encode(0, F_ALLOC));
        let epilogue = ctx.sbrk(TAG)?;
        ctx.store(epilogue, encode(0, F_ALLOC));
        let top_end = ctx.heap().brk();
        Ok(BestFit {
            head,
            top_end,
            split_threshold: crate::first_fit::DEFAULT_SPLIT_THRESHOLD,
            stats: AllocStats::new(),
        })
    }

    /// The freelist sentinel address (used by the consistency checker).
    pub fn freelist_head(&self) -> Address {
        self.head
    }

    /// Scans the whole freelist for the smallest block of at least
    /// `need` bytes (early exit on an exact fit) and unlinks it.
    fn take_best(&mut self, need: u32, ctx: &mut MemCtx<'_>) -> Option<(Address, u32)> {
        let mut best: Option<(Address, u32)> = None;
        let mut node = list::next(ctx, self.head);
        ctx.ops(1);
        while node != self.head {
            let size = tag_size(read_header(ctx, node));
            self.stats.search_visits += 1;
            ctx.ops(3);
            if size >= need && best.is_none_or(|(_, b)| size < b) {
                best = Some((node, size));
                if size == need {
                    break;
                }
            }
            node = list::next(ctx, node);
        }
        if let Some((b, _)) = best {
            list::unlink(ctx, b);
        }
        best
    }

    /// Grows the heap; returns an off-list free block merged with a free
    /// predecessor.
    fn extend(&mut self, need: u32, ctx: &mut MemCtx<'_>) -> Result<(Address, u32), AllocError> {
        let old_brk = ctx.heap().brk();
        let mut block = if old_brk == self.top_end {
            ctx.sbrk(u64::from(need))?;
            old_brk - TAG
        } else {
            let start = ctx.sbrk(u64::from(need) + 2 * TAG)?;
            ctx.store(start, encode(0, F_ALLOC));
            start + TAG
        };
        let mut size = need;
        write_tags(ctx, block, size, 0);
        ctx.store(block + u64::from(size), encode(0, F_ALLOC));
        self.top_end = ctx.heap().brk();
        let prev_tag = read_prev_footer(ctx, block);
        ctx.ops(2);
        if !tag_allocated(prev_tag) && tag_size(prev_tag) != 0 {
            let prev = block - u64::from(tag_size(prev_tag));
            list::unlink(ctx, prev);
            size += tag_size(prev_tag);
            block = prev;
            write_tags(ctx, block, size, 0);
            self.stats.coalesces += 1;
        }
        Ok((block, size))
    }

    /// Places `need` bytes in the off-list free block, splitting when
    /// the remainder is worth keeping.
    fn place(&mut self, b: Address, bsize: u32, need: u32, ctx: &mut MemCtx<'_>) -> (Address, u32) {
        let remainder = bsize - need;
        ctx.ops(2);
        if remainder >= MIN_BLOCK && remainder - TAG_OVERHEAD >= self.split_threshold {
            let tail = b + u64::from(need);
            write_tags(ctx, tail, remainder, 0);
            list::insert_after(ctx, self.head, tail);
            write_tags(ctx, b, need, F_ALLOC);
            (b + TAG, need)
        } else {
            write_tags(ctx, b, bsize, F_ALLOC);
            (b + TAG, bsize)
        }
    }
}

impl Allocator for BestFit {
    fn name(&self) -> &'static str {
        "BestFit"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let need = round_payload(size) + TAG_OVERHEAD;
        ctx.ops(4);
        let visits_before = self.stats.search_visits;
        let (block, bsize) = match self.take_best(need, ctx) {
            Some(found) => found,
            None => self.extend(need, ctx)?,
        };
        let (payload, granted) = self.place(block, bsize, need, ctx);
        ctx.obs_observe("alloc.search_len", self.stats.search_visits - visits_before);
        self.stats.note_malloc(size, granted);
        Ok(payload)
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if ptr.raw() < TAG || !ctx.heap().contains(ptr - TAG, TAG) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let mut b = ptr - TAG;
        let tag = read_header(ctx, b);
        ctx.ops(2);
        if !tag_allocated(tag) || tag_size(tag) < MIN_BLOCK {
            return Err(AllocError::InvalidFree(ptr));
        }
        let granted = tag_size(tag);
        if !ctx.heap().contains(b, u64::from(granted) + TAG) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let mut size = granted;
        let merges_before = self.stats.coalesces;
        // Forward merge.
        let next_tag = read_header(ctx, b + u64::from(size));
        ctx.ops(2);
        if !tag_allocated(next_tag) && tag_size(next_tag) != 0 {
            list::unlink(ctx, b + u64::from(size));
            size += tag_size(next_tag);
            self.stats.coalesces += 1;
        }
        // Backward merge.
        let prev_tag = read_prev_footer(ctx, b);
        ctx.ops(2);
        if !tag_allocated(prev_tag) && tag_size(prev_tag) != 0 {
            let prev = b - u64::from(tag_size(prev_tag));
            list::unlink(ctx, prev);
            size += tag_size(prev_tag);
            b = prev;
            self.stats.coalesces += 1;
        }
        write_tags(ctx, b, size, 0);
        list::insert_after(ctx, self.head, b);
        ctx.obs_observe("alloc.coalesce_per_free", self.stats.coalesces - merges_before);
        self.stats.note_free(granted);
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_tagged_heap;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    fn first_block(bf: &BestFit) -> Address {
        bf.freelist_head() + list::SENTINEL_BYTES + TAG
    }

    #[test]
    fn picks_the_tightest_fit() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bf = BestFit::new(&mut ctx).unwrap();
        // Create free blocks of 72 and 40 payload bytes, in that order.
        let big = bf.malloc(72, &mut ctx).unwrap();
        let _hold1 = bf.malloc(8, &mut ctx).unwrap();
        let small = bf.malloc(40, &mut ctx).unwrap();
        let _hold2 = bf.malloc(8, &mut ctx).unwrap();
        bf.free(big, &mut ctx).unwrap();
        bf.free(small, &mut ctx).unwrap();
        // A 36-byte request fits both; best fit must take the 40-byte
        // block even though the 72-byte one comes first in the list.
        let p = bf.malloc(36, &mut ctx).unwrap();
        assert_eq!(p, small);
        // First fit, for contrast, would have split the big block.
    }

    #[test]
    fn exact_fit_stops_the_scan() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bf = BestFit::new(&mut ctx).unwrap();
        let a = bf.malloc(40, &mut ctx).unwrap();
        let _h = bf.malloc(8, &mut ctx).unwrap();
        bf.free(a, &mut ctx).unwrap();
        let before = bf.stats().search_visits;
        let b = bf.malloc(40, &mut ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(bf.stats().search_visits - before, 1, "exact fit found immediately");
    }

    #[test]
    fn whole_list_scanned_without_exact_fit() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bf = BestFit::new(&mut ctx).unwrap();
        let mut holes = Vec::new();
        for i in 0..10u32 {
            holes.push(bf.malloc(100 + i * 16, &mut ctx).unwrap());
            bf.malloc(8, &mut ctx).unwrap(); // separators prevent merging
        }
        for p in holes {
            bf.free(p, &mut ctx).unwrap();
        }
        let before = bf.stats().search_visits;
        bf.malloc(60, &mut ctx).unwrap();
        assert!(bf.stats().search_visits - before >= 10, "best fit must visit every free block");
    }

    #[test]
    fn coalesces_and_balances() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bf = BestFit::new(&mut ctx).unwrap();
        let mut live = Vec::new();
        for i in 0..150u32 {
            live.push(bf.malloc(8 + (i * 11) % 300, &mut ctx).unwrap());
            if i % 2 == 0 {
                let victim = live.swap_remove((i as usize * 3) % live.len());
                bf.free(victim, &mut ctx).unwrap();
            }
        }
        for p in live {
            bf.free(p, &mut ctx).unwrap();
        }
        let walk = check_tagged_heap(&ctx, first_block(&bf)).unwrap();
        assert_eq!(walk.allocated_blocks, 0);
        assert_eq!(walk.adjacent_free_pairs, 0);
        assert_eq!(bf.stats().live_granted, 0);
    }

    #[test]
    fn double_free_detected() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bf = BestFit::new(&mut ctx).unwrap();
        let a = bf.malloc(32, &mut ctx).unwrap();
        bf.free(a, &mut ctx).unwrap();
        assert_eq!(bf.free(a, &mut ctx), Err(AllocError::InvalidFree(a)));
    }
}
