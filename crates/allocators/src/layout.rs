//! Shared in-heap metadata layout: boundary tags and embedded freelists.
//!
//! The sequential-fit allocators ([`crate::FirstFit`], [`crate::GnuGxx`])
//! and the general side of [`crate::QuickFit`] use the classic Knuth block
//! layout:
//!
//! ```text
//!        +-----------+----------------------------+-----------+
//! block: | header 4B |          payload           | footer 4B |
//!        +-----------+----------------------------+-----------+
//!                    ^ payload address returned to the caller
//! ```
//!
//! Header and footer both hold `size | flags` (the *boundary tags*), where
//! `size` is the total block size in bytes (a word multiple) and bit 0 is
//! the allocated flag. Tags at both ends let `free` coalesce with either
//! neighbour in constant time — and they are exactly the per-object
//! overhead whose cache pollution Table 6 of the paper measures.
//!
//! Free blocks additionally thread a circular doubly-linked list through
//! their payload (`next` at +4, `prev` at +8 from the block address), so a
//! free block occupies at least [`MIN_BLOCK`] bytes. List heads are
//! sentinel pseudo-blocks (header + two links) placed in the allocator's
//! static area at heap start, giving uniform link manipulation.
//!
//! All manipulation goes through [`sim_mem::MemCtx`], so every tag or link
//! touched shows up in the reference trace.

use sim_mem::{Address, MemCtx};

/// Size of one boundary tag (header or footer) in bytes.
pub const TAG: u64 = 4;

/// Byte offset of the `next` link in a free block (from the block address).
pub const NEXT_OFF: u64 = 4;

/// Byte offset of the `prev` link in a free block.
pub const PREV_OFF: u64 = 8;

/// Minimum total block size: header + next + prev + footer.
pub const MIN_BLOCK: u32 = 16;

/// Per-allocated-object overhead of the boundary-tag scheme (header +
/// footer). The paper cites this 8-byte figure when estimating that ~25%
/// of the cache can end up holding allocator-only data.
pub const TAG_OVERHEAD: u32 = 8;

/// Flag bit 0: block is allocated.
pub const F_ALLOC: u32 = 0b01;

/// Flag bit 1: block belongs to QuickFit's fast storage (never coalesced).
pub const F_FAST: u32 = 0b10;

const FLAG_MASK: u32 = 0b11;

/// Packs a block size and flags into a tag word.
///
/// # Panics
///
/// Panics in debug builds if `size` is not a multiple of the word size.
pub fn encode(size: u32, flags: u32) -> u32 {
    debug_assert_eq!(size % 4, 0, "block sizes are word multiples");
    debug_assert_eq!(flags & !FLAG_MASK, 0);
    size | flags
}

/// Extracts the block size from a tag word.
pub fn tag_size(tag: u32) -> u32 {
    tag & !FLAG_MASK
}

/// Returns `true` if the tag's allocated bit is set.
pub fn tag_allocated(tag: u32) -> bool {
    tag & F_ALLOC != 0
}

/// Returns `true` if the tag's fast-storage bit is set.
pub fn tag_fast(tag: u32) -> bool {
    tag & F_FAST != 0
}

/// Writes both boundary tags of the block at `b`.
///
/// Counted under `alloc.tag_writes`: boundary-tag traffic is the
/// cache-pollution mechanism Table 6 of the paper quantifies, so the
/// recorder sees every tag word the allocators touch.
pub fn write_tags(ctx: &mut MemCtx<'_>, b: Address, size: u32, flags: u32) {
    let tag = encode(size, flags);
    ctx.obs_add("alloc.tag_writes", 2);
    ctx.store(b, tag);
    ctx.store(b + u64::from(size) - TAG, tag);
}

/// Reads the header tag of the block at `b` (counted under
/// `alloc.tag_reads`).
pub fn read_header(ctx: &mut MemCtx<'_>, b: Address) -> u32 {
    ctx.obs_add("alloc.tag_reads", 1);
    ctx.load(b)
}

/// Reads the footer tag of the block *preceding* address `b` (counted
/// under `alloc.tag_reads`).
pub fn read_prev_footer(ctx: &mut MemCtx<'_>, b: Address) -> u32 {
    ctx.obs_add("alloc.tag_reads", 1);
    ctx.load(b - TAG)
}

/// Writes both boundary tags of the block at `b` through a tag mirror:
/// identical emission and charges to [`write_tags`], with the mirror
/// kept coherent so later [`read_header_shadow`] /
/// [`read_prev_footer_shadow`] calls never touch the heap image.
pub fn write_tags_shadow(
    ctx: &mut MemCtx<'_>,
    tags: &mut crate::shadow::WordMirror,
    b: Address,
    size: u32,
    flags: u32,
) {
    let tag = encode(size, flags);
    ctx.obs_add("alloc.tag_writes", 2);
    tags.store(ctx, b, tag);
    tags.store(ctx, b + u64::from(size) - TAG, tag);
}

/// Reads the header tag of the block at `b` from a tag mirror: identical
/// emission and charges to [`read_header`], value served host-side.
pub fn read_header_shadow(
    ctx: &mut MemCtx<'_>,
    tags: &crate::shadow::WordMirror,
    b: Address,
) -> u32 {
    ctx.obs_add("alloc.tag_reads", 1);
    tags.load(ctx, b)
}

/// Reads the footer tag of the block *preceding* `b` from a tag mirror:
/// identical emission and charges to [`read_prev_footer`].
pub fn read_prev_footer_shadow(
    ctx: &mut MemCtx<'_>,
    tags: &crate::shadow::WordMirror,
    b: Address,
) -> u32 {
    ctx.obs_add("alloc.tag_reads", 1);
    tags.load(ctx, b - TAG)
}

/// Operations on the circular doubly-linked freelist threaded through free
/// blocks. Every node — including sentinel list heads — is addressed by
/// its block address, with links at [`NEXT_OFF`] and [`PREV_OFF`].
pub mod list {
    use super::*;

    /// Bytes a sentinel head occupies in the static area (header word,
    /// unused, plus the two links).
    pub const SENTINEL_BYTES: u64 = 12;

    fn to_word(a: Address) -> u32 {
        u32::try_from(a.raw()).expect("simulated addresses fit in a word")
    }

    fn from_word(w: u32) -> Address {
        Address::new(u64::from(w))
    }

    /// Initializes a sentinel head to the empty state (both links point at
    /// the sentinel itself).
    pub fn init_head(ctx: &mut MemCtx<'_>, head: Address) {
        let w = to_word(head);
        ctx.store(head + NEXT_OFF, w);
        ctx.store(head + PREV_OFF, w);
    }

    /// Loads the successor of `node`.
    pub fn next(ctx: &mut MemCtx<'_>, node: Address) -> Address {
        from_word(ctx.load(node + NEXT_OFF))
    }

    /// Loads the predecessor of `node`.
    pub fn prev(ctx: &mut MemCtx<'_>, node: Address) -> Address {
        from_word(ctx.load(node + PREV_OFF))
    }

    /// Returns `true` if the list rooted at `head` has no members.
    pub fn is_empty(ctx: &mut MemCtx<'_>, head: Address) -> bool {
        next(ctx, head) == head
    }

    /// Inserts `new` immediately after `node`.
    pub fn insert_after(ctx: &mut MemCtx<'_>, node: Address, new: Address) {
        let succ = next(ctx, node);
        ctx.store(new + NEXT_OFF, to_word(succ));
        ctx.store(new + PREV_OFF, to_word(node));
        ctx.store(node + NEXT_OFF, to_word(new));
        ctx.store(succ + PREV_OFF, to_word(new));
        ctx.ops(2);
    }

    /// Removes `node` from its list (the node's own links are left stale).
    pub fn unlink(ctx: &mut MemCtx<'_>, node: Address) {
        let succ = next(ctx, node);
        let pred = prev(ctx, node);
        ctx.store(pred + NEXT_OFF, to_word(succ));
        ctx.store(succ + PREV_OFF, to_word(pred));
        ctx.ops(2);
    }

    /// Replaces `old` with `new` in place (used when splitting a free
    /// block: the remainder inherits the original's list position).
    pub fn replace(ctx: &mut MemCtx<'_>, old: Address, new: Address) {
        let succ = next(ctx, old);
        let pred = prev(ctx, old);
        ctx.store(new + NEXT_OFF, to_word(succ));
        ctx.store(new + PREV_OFF, to_word(pred));
        ctx.store(pred + NEXT_OFF, to_word(new));
        ctx.store(succ + PREV_OFF, to_word(new));
        ctx.ops(2);
    }
}

/// Rounds a payload request up to a word multiple, with a floor that keeps
/// freed blocks large enough to hold their freelist links.
pub fn round_payload(size: u32) -> u32 {
    let size = size.max(1);
    let rounded = size.div_ceil(4) * 4;
    rounded.max(MIN_BLOCK - TAG_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    fn with_ctx<R>(f: impl FnOnce(&mut MemCtx<'_>) -> R) -> R {
        let mut heap = HeapImage::new();
        let mut sink = CountingSink::new();
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        f(&mut ctx)
    }

    #[test]
    fn tag_encoding_round_trips() {
        let t = encode(64, F_ALLOC);
        assert_eq!(tag_size(t), 64);
        assert!(tag_allocated(t));
        assert!(!tag_fast(t));
        let t = encode(32, F_FAST);
        assert!(!tag_allocated(t));
        assert!(tag_fast(t));
        assert_eq!(tag_size(t), 32);
    }

    #[test]
    fn tags_written_at_both_ends() {
        with_ctx(|ctx| {
            let b = ctx.sbrk(32).unwrap();
            write_tags(ctx, b, 32, F_ALLOC);
            assert_eq!(read_header(ctx, b), encode(32, F_ALLOC));
            assert_eq!(read_prev_footer(ctx, b + 32), encode(32, F_ALLOC));
        });
    }

    #[test]
    fn list_insert_and_unlink() {
        with_ctx(|ctx| {
            let head = ctx.sbrk(list::SENTINEL_BYTES).unwrap();
            let a = ctx.sbrk(16).unwrap();
            let b = ctx.sbrk(16).unwrap();
            list::init_head(ctx, head);
            assert!(list::is_empty(ctx, head));

            list::insert_after(ctx, head, a);
            list::insert_after(ctx, head, b);
            // head -> b -> a -> head
            assert_eq!(list::next(ctx, head), b);
            assert_eq!(list::next(ctx, b), a);
            assert_eq!(list::next(ctx, a), head);
            assert_eq!(list::prev(ctx, head), a);

            list::unlink(ctx, b);
            assert_eq!(list::next(ctx, head), a);
            assert_eq!(list::prev(ctx, a), head);

            list::unlink(ctx, a);
            assert!(list::is_empty(ctx, head));
        });
    }

    #[test]
    fn list_replace_preserves_position() {
        with_ctx(|ctx| {
            let head = ctx.sbrk(list::SENTINEL_BYTES).unwrap();
            let a = ctx.sbrk(16).unwrap();
            let b = ctx.sbrk(16).unwrap();
            let c = ctx.sbrk(16).unwrap();
            list::init_head(ctx, head);
            list::insert_after(ctx, head, b);
            list::insert_after(ctx, head, a);
            // head -> a -> b -> head; replace a with c.
            list::replace(ctx, a, c);
            assert_eq!(list::next(ctx, head), c);
            assert_eq!(list::next(ctx, c), b);
            assert_eq!(list::prev(ctx, b), c);
        });
    }

    #[test]
    fn round_payload_enforces_minimum() {
        assert_eq!(round_payload(0), 8);
        assert_eq!(round_payload(1), 8);
        assert_eq!(round_payload(8), 8);
        assert_eq!(round_payload(9), 12);
        assert_eq!(round_payload(24), 24);
    }
}
