//! `QUICKFIT`: Weinstock and Wulf's fast segregated-storage allocator, in
//! the configuration the paper measured.
//!
//! Requests of 4–32 bytes, rounded to word multiples, are served from an
//! array of *exact-size* freelists: the request size indexes the array
//! directly, so allocation is a handful of instructions. Freed fast
//! blocks are pushed back LIFO and never coalesced. When a fast list is
//! empty, blocks are carved from a *tail* region of working storage.
//!
//! Larger requests are delegated to a general-purpose allocator — GNU G++
//! ([`crate::GnuGxx`]), as in the paper's measured configuration.
//!
//! Each block carries a one-word boundary tag identifying its owner (fast
//! class vs. general allocator), which `free` consults to route the
//! block. This tag is exactly the "cache pollution" the paper discusses
//! in §4.3: information useful only to the allocator, dragged into the
//! cache alongside object data.
//!
//! The rebuilt fast path serves QuickFit's own head/tail/chain words from
//! a [`crate::shadow::WordMirror`] (the embedded GNU G++ carries its
//! own); only `free`'s routing tag read stays a real heap load, because
//! that word may belong to either owner. Emission stays bit-identical to
//! [`crate::reference::quick_fit`].

use sim_mem::{Address, MemCtx};

use crate::layout::{encode, tag_fast, tag_size, F_ALLOC, F_FAST, TAG};
use crate::shadow::WordMirror;
use crate::{AllocError, AllocStats, Allocator, GnuGxx};

/// Largest payload (bytes) served by the fast lists, as the paper
/// measured it.
pub const FAST_MAX: u32 = 32;

/// Number of exact-size fast classes (4, 8, ..., 32 bytes) in the
/// paper's configuration.
pub const NCLASSES: usize = (FAST_MAX / 4) as usize;

/// Tail region replenishment size: fresh working storage is grabbed from
/// the operating system in pages.
pub const TAIL_CHUNK: u32 = 4096;

/// Configuration knobs, exposed for the design-space sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuickFitConfig {
    /// Largest payload (bytes) served by the fast lists; one exact-size
    /// class exists per word multiple up to this bound. Must be a
    /// positive word multiple no larger than `TAIL_CHUNK - 4` (a fast
    /// block, tag included, must fit one tail grab).
    pub fast_max: u32,
}

impl Default for QuickFitConfig {
    fn default() -> Self {
        QuickFitConfig { fast_max: FAST_MAX }
    }
}

/// Weinstock & Wulf's QuickFit. See the module docs.
#[derive(Debug)]
pub struct QuickFit {
    /// Static area: one list-head word per fast class, then the tail
    /// pointer and tail limit words.
    statics: Address,
    /// General allocator for requests above the fast bound.
    general: GnuGxx,
    config: QuickFitConfig,
    stats: AllocStats,
    /// Mirror of QuickFit's own metadata words (heads, tail, limit, fast
    /// chain words and fast tags). General-side words live in the
    /// embedded allocator's mirror instead.
    mirror: WordMirror,
}

impl QuickFit {
    /// Creates a QuickFit allocator (with an embedded GNU G++ for large
    /// requests) in the paper's configuration, reserving the static area.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the static area cannot be reserved.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        Self::with_config(ctx, QuickFitConfig::default())
    }

    /// Creates a QuickFit allocator with explicit knobs. The default
    /// config reproduces [`QuickFit::new`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the static area cannot be reserved.
    ///
    /// # Panics
    ///
    /// Panics if `fast_max` is not a positive word multiple that fits a
    /// tail grab (see [`QuickFitConfig::fast_max`]).
    pub fn with_config(ctx: &mut MemCtx<'_>, config: QuickFitConfig) -> Result<Self, AllocError> {
        assert!(
            config.fast_max >= 4
                && config.fast_max.is_multiple_of(4)
                && config.fast_max + TAG as u32 <= TAIL_CHUNK,
            "fast_max {} is not a word multiple in 4..={}",
            config.fast_max,
            TAIL_CHUNK - TAG as u32
        );
        let nclasses = (config.fast_max / 4) as u64;
        let mut mirror = WordMirror::new();
        let statics = ctx.sbrk((nclasses + 2) * 4)?;
        for i in 0..nclasses {
            mirror.store(ctx, statics + i * 4, 0);
        }
        mirror.store(ctx, statics + nclasses * 4, 0);
        mirror.store(ctx, statics + nclasses * 4 + 4, 0);
        let general = GnuGxx::new(ctx)?;
        Ok(QuickFit { statics, general, config, stats: AllocStats::new(), mirror })
    }

    /// The fast-class index for a payload request in the paper's
    /// configuration, or `None` if the request must go to the general
    /// allocator.
    pub fn class_for(size: u32) -> Option<usize> {
        let rounded = size.max(1).div_ceil(4) * 4;
        (rounded <= FAST_MAX).then(|| (rounded / 4 - 1) as usize)
    }

    /// The payload size of fast class `idx`.
    pub fn class_payload(idx: usize) -> u32 {
        (idx as u32 + 1) * 4
    }

    /// [`QuickFit::class_for`] under this instance's configured bound.
    fn class_index(&self, size: u32) -> Option<usize> {
        let rounded = size.max(1).div_ceil(4) * 4;
        (rounded <= self.config.fast_max).then(|| (rounded / 4 - 1) as usize)
    }

    fn tail_off(&self) -> u64 {
        u64::from(self.config.fast_max / 4) * 4
    }

    fn head_addr(&self, idx: usize) -> Address {
        self.statics + idx as u64 * 4
    }

    /// Carves a fresh block of `total` bytes from the tail region,
    /// growing it by [`TAIL_CHUNK`] when exhausted. Any unusably small
    /// tail remnant is abandoned, as in the original.
    fn carve(&mut self, total: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let tail_off = self.tail_off();
        let limit_off = tail_off + 4;
        let tail = self.mirror.load(ctx, self.statics + tail_off);
        let limit = self.mirror.load(ctx, self.statics + limit_off);
        ctx.ops(3);
        let tail = if tail + total <= limit {
            tail
        } else {
            let fresh = ctx.sbrk(u64::from(TAIL_CHUNK))?;
            self.mirror.store(ctx, self.statics + limit_off, fresh.raw() as u32 + TAIL_CHUNK);
            fresh.raw() as u32
        };
        self.mirror.store(ctx, self.statics + tail_off, tail + total);
        let block = Address::new(u64::from(tail));
        // The boundary tag: size plus the fast-storage marker, written
        // once and never changed (fast blocks do not coalesce).
        self.mirror.store(ctx, block, encode(total, F_FAST | F_ALLOC));
        Ok(block)
    }
}

impl Allocator for QuickFit {
    fn name(&self) -> &'static str {
        "QuickFit"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        ctx.ops(3);
        if let Some(idx) = self.class_index(size) {
            let total = Self::class_payload(idx) + TAG as u32;
            let head = self.head_addr(idx);
            let b = self.mirror.load(ctx, head);
            let block = if b != 0 {
                // Pop from a warm quicklist: the O(1) path the engine
                // exists for.
                ctx.obs_add(obs::names::QUICK_HIT, 1);
                let block = Address::new(u64::from(b));
                let next = self.mirror.load(ctx, block + TAG);
                self.mirror.store(ctx, head, next);
                block
            } else {
                self.carve(total, ctx)?
            };
            // Quicklist hit: no freelist search at all. Observing an
            // explicit zero keeps the per-malloc search-length
            // histogram comparable across allocators (paper finding 1).
            self.stats.quick_hits += 1;
            ctx.obs_add("alloc.quicklist_hits", 1);
            ctx.obs_observe("alloc.search_len", 0);
            self.stats.note_malloc(size, total);
            Ok(block + TAG)
        } else {
            self.stats.misc_hits += 1;
            ctx.obs_add("alloc.misclist_hits", 1);
            let before = self.general.stats().live_granted;
            // The embedded GNU G++ observes its own search length.
            let p = self.general.malloc(size, ctx)?;
            let granted = self.general.stats().live_granted - before;
            self.stats.absorb_general_counters(self.general.stats());
            self.stats.note_malloc(size, granted as u32);
            Ok(p)
        }
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if ptr.raw() < TAG || !ctx.heap().contains(ptr - TAG, TAG) {
            return Err(AllocError::InvalidFree(ptr));
        }
        // Routing read: this word was written by whichever side owns the
        // block (our fast tag or the general allocator's boundary tag),
        // so it cannot be served from one mirror — read the heap image,
        // which both mirrors keep current.
        let tag = ctx.load(ptr - TAG);
        ctx.ops(2);
        if tag_fast(tag) {
            let total = tag_size(tag);
            let payload = total - TAG as u32;
            if payload == 0 || payload > self.config.fast_max || !payload.is_multiple_of(4) {
                return Err(AllocError::InvalidFree(ptr));
            }
            let idx = (payload / 4 - 1) as usize;
            let block = ptr - TAG;
            // Push LIFO.
            let head = self.head_addr(idx);
            let old = self.mirror.load(ctx, head);
            if old == block.raw() as u32 {
                // The block is already the list head: double free.
                return Err(AllocError::InvalidFree(ptr));
            }
            self.mirror.store(ctx, block + TAG, old);
            self.mirror.store(ctx, head, block.raw() as u32);
            // Fast blocks never coalesce; record the zero so the
            // histogram covers every free.
            ctx.obs_observe("alloc.coalesce_per_free", 0);
            self.stats.note_free(total);
            Ok(())
        } else {
            let before = self.general.stats().live_granted;
            self.general.free(ptr, ctx)?;
            let granted = before - self.general.stats().live_granted;
            self.stats.absorb_general_counters(self.general.stats());
            self.stats.note_free(granted as u32);
            Ok(())
        }
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    #[test]
    fn class_mapping_rounds_to_words() {
        assert_eq!(QuickFit::class_for(1), Some(0));
        assert_eq!(QuickFit::class_for(4), Some(0));
        assert_eq!(QuickFit::class_for(5), Some(1));
        assert_eq!(QuickFit::class_for(32), Some(7));
        assert_eq!(QuickFit::class_for(33), None);
        assert_eq!(QuickFit::class_for(0), Some(0));
        assert_eq!(QuickFit::class_payload(7), 32);
    }

    #[test]
    fn fast_path_is_lifo_and_exact() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::new(&mut ctx).unwrap();
        let a = q.malloc(24, &mut ctx).unwrap();
        let b = q.malloc(24, &mut ctx).unwrap();
        q.free(a, &mut ctx).unwrap();
        q.free(b, &mut ctx).unwrap();
        assert_eq!(q.malloc(24, &mut ctx).unwrap(), b);
        assert_eq!(q.malloc(24, &mut ctx).unwrap(), a);
        // Exact classes: a 24-byte request consumes 28 bytes (tag incl.).
        assert_eq!(q.stats().live_granted, 2 * 28);
    }

    #[test]
    fn different_word_sizes_use_distinct_lists() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::new(&mut ctx).unwrap();
        let a = q.malloc(8, &mut ctx).unwrap();
        q.free(a, &mut ctx).unwrap();
        // A 12-byte request must not reuse the 8-byte block.
        let b = q.malloc(12, &mut ctx).unwrap();
        assert_ne!(a, b);
        // But an 8-byte request will.
        assert_eq!(q.malloc(8, &mut ctx).unwrap(), a);
    }

    #[test]
    fn large_requests_go_to_the_general_allocator() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::new(&mut ctx).unwrap();
        let big = q.malloc(100, &mut ctx).unwrap();
        q.free(big, &mut ctx).unwrap();
        assert_eq!(q.malloc(100, &mut ctx).unwrap(), big);
        assert_eq!(q.stats().mallocs, 2);
        assert_eq!(q.stats().frees, 1);
    }

    #[test]
    fn boundary_tag_routes_frees_correctly() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::new(&mut ctx).unwrap();
        let small = q.malloc(16, &mut ctx).unwrap();
        let big = q.malloc(500, &mut ctx).unwrap();
        // Free in the opposite order; both must route correctly.
        q.free(big, &mut ctx).unwrap();
        q.free(small, &mut ctx).unwrap();
        assert_eq!(q.stats().live_granted, 0);
        assert_eq!(q.stats().live_objects(), 0);
    }

    #[test]
    fn tail_carving_consumes_pages() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::new(&mut ctx).unwrap();
        let before = ctx.heap().in_use();
        q.malloc(28, &mut ctx).unwrap();
        assert_eq!(ctx.heap().in_use() - before, 4096);
        // 4096 / 32 = 128 blocks fit before the next page.
        for _ in 0..127 {
            q.malloc(28, &mut ctx).unwrap();
        }
        assert_eq!(ctx.heap().in_use() - before, 4096);
        q.malloc(28, &mut ctx).unwrap();
        assert_eq!(ctx.heap().in_use() - before, 8192);
    }

    #[test]
    fn warm_fast_malloc_is_cheap() {
        let mut fx = Fx::new();
        let a;
        {
            let mut ctx = fx.ctx();
            let mut q = QuickFit::new(&mut ctx).unwrap();
            a = q.malloc(24, &mut ctx).unwrap();
            q.free(a, &mut ctx).unwrap();
            let before = fx.instrs.total();
            let mut ctx = fx.ctx();
            q.malloc(24, &mut ctx).unwrap();
            let cost = fx.instrs.total() - before;
            assert!(cost < 12, "warm QuickFit malloc took {cost} instructions");
        }
    }

    #[test]
    fn wider_fast_bound_serves_larger_requests_exactly() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::with_config(&mut ctx, QuickFitConfig { fast_max: 64 }).unwrap();
        // 48 bytes is general-allocator territory at the default bound,
        // but an exact fast class here.
        let a = q.malloc(48, &mut ctx).unwrap();
        q.free(a, &mut ctx).unwrap();
        assert_eq!(q.malloc(48, &mut ctx).unwrap(), a);
        assert_eq!(q.stats().quick_hits, 2);
        assert_eq!(q.stats().misc_hits, 0);
        // 68 bytes still routes to the general allocator.
        q.malloc(68, &mut ctx).unwrap();
        assert_eq!(q.stats().misc_hits, 1);
    }

    #[test]
    fn narrower_fast_bound_delegates_more() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::with_config(&mut ctx, QuickFitConfig { fast_max: 8 }).unwrap();
        q.malloc(8, &mut ctx).unwrap();
        q.malloc(12, &mut ctx).unwrap();
        assert_eq!(q.stats().quick_hits, 1);
        assert_eq!(q.stats().misc_hits, 1);
    }

    #[test]
    fn immediate_double_free_detected() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::new(&mut ctx).unwrap();
        let a = q.malloc(12, &mut ctx).unwrap();
        q.free(a, &mut ctx).unwrap();
        assert_eq!(q.free(a, &mut ctx), Err(AllocError::InvalidFree(a)));
    }

    #[test]
    fn interleaved_fast_and_general_traffic_stays_consistent() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut q = QuickFit::new(&mut ctx).unwrap();
        let mut live = Vec::new();
        for i in 0..400u32 {
            let size = if i % 3 == 0 { 100 + i % 900 } else { 4 + (i % 8) * 4 };
            live.push(q.malloc(size, &mut ctx).unwrap());
            if i % 2 == 1 {
                let victim = live.swap_remove((i as usize * 11) % live.len());
                q.free(victim, &mut ctx).unwrap();
            }
        }
        for p in live {
            q.free(p, &mut ctx).unwrap();
        }
        assert_eq!(q.stats().live_objects(), 0);
        assert_eq!(q.stats().live_granted, 0);
    }
}
