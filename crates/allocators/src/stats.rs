//! Allocation statistics shared by all allocator implementations.

use serde::{Deserialize, Serialize};

/// Counters every [`crate::Allocator`] maintains.
///
/// `granted` bytes are what the allocator actually consumed for a request
/// (payload rounding plus per-object overhead such as boundary tags).
/// Because a C-style `free(ptr)` does not know the original request size,
/// requested-live accounting is done by the experiment engine, which does;
/// the allocator tracks granted bytes, which its own metadata encodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Number of successful `malloc` calls.
    pub mallocs: u64,
    /// Number of successful `free` calls.
    pub frees: u64,
    /// Sum of requested sizes over all `malloc`s.
    pub requested_bytes: u64,
    /// Granted (consumed) bytes currently live, including overhead.
    pub live_granted: u64,
    /// Peak of [`Self::live_granted`].
    pub peak_granted: u64,
    /// Free-block visits made while searching freelists (sequential-fit
    /// allocators only; zero for pure segregated storage).
    pub search_visits: u64,
    /// Number of block coalesce operations performed.
    pub coalesces: u64,
    /// Number of oversized blocks split during allocation.
    ///
    /// `#[serde(default)]` so results serialized before this counter
    /// existed still deserialize (schema-stable extension).
    #[serde(default)]
    pub splits: u64,
    /// Requests satisfied from a segregated fast list (QuickFit's
    /// quicklists); zero for allocators without one.
    #[serde(default)]
    pub quick_hits: u64,
    /// Requests routed to the general ("misc") allocator by a
    /// fast-list-capable allocator; zero for the rest.
    #[serde(default)]
    pub misc_hits: u64,
}

impl AllocStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful allocation of `requested` bytes that consumed
    /// `granted` bytes of heap.
    pub fn note_malloc(&mut self, requested: u32, granted: u32) {
        self.mallocs += 1;
        self.requested_bytes += u64::from(requested);
        self.live_granted += u64::from(granted);
        self.peak_granted = self.peak_granted.max(self.live_granted);
    }

    /// Records a successful free of a block that had been granted
    /// `granted` bytes.
    pub fn note_free(&mut self, granted: u32) {
        self.frees += 1;
        self.live_granted = self.live_granted.saturating_sub(u64::from(granted));
    }

    /// Live objects right now.
    pub fn live_objects(&self) -> u64 {
        self.mallocs - self.frees
    }

    /// Mean requested bytes per allocation so far (0.0 before the first).
    pub fn mean_request(&self) -> f64 {
        if self.mallocs == 0 {
            0.0
        } else {
            self.requested_bytes as f64 / self.mallocs as f64
        }
    }

    /// Folds an embedded general allocator's search/coalesce/split
    /// counters into this record, so a hybrid's `stats()` reflects the
    /// whole allocator (QuickFit embedding GNU G++, for example). The
    /// delegate is the sole source of these counters, so the fold is an
    /// overwrite, not an accumulation.
    pub fn absorb_general_counters(&mut self, general: &AllocStats) {
        self.search_visits = general.search_visits;
        self.coalesces = general.coalesces;
        self.splits = general.splits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_free_cycle_balances() {
        let mut s = AllocStats::new();
        s.note_malloc(24, 32);
        s.note_malloc(8, 16);
        assert_eq!(s.live_objects(), 2);
        assert_eq!(s.live_granted, 48);
        s.note_free(32);
        s.note_free(16);
        assert_eq!(s.live_objects(), 0);
        assert_eq!(s.live_granted, 0);
        assert_eq!(s.peak_granted, 48);
        assert_eq!(s.requested_bytes, 32);
    }

    #[test]
    fn peaks_survive_frees() {
        let mut s = AllocStats::new();
        s.note_malloc(100, 104);
        s.note_free(104);
        s.note_malloc(4, 16);
        assert_eq!(s.peak_granted, 104);
        assert_eq!(s.live_granted, 16);
    }
}
