//! `BSD`: Chris Kingsley's power-of-two segregated-storage allocator,
//! distributed with 4.2 BSD Unix.
//!
//! Requests are rounded up to a power of two (including a one-word
//! header), and a singly-linked freelist is kept per size class. `malloc`
//! pops the class's list head; `free` pushes the block back. No search,
//! no coalescing — which is why the implementation is very fast and why
//! freed memory is re-used immediately (the locality property the paper
//! credits it with). The price is severe internal fragmentation: an
//! N-byte object consumes the next power of two above `N + 4`, and much
//! of that space "may be wasted", inflating the resident page set
//! (visible in the paper's Figure 2).
//!
//! When a class's list is empty, a whole page (or the block size, if
//! larger) is carved into blocks at once, mirroring the 4.2 BSD
//! `morecore`.
//!
//! The rebuilt hot path serves every head and chain word from a
//! [`crate::shadow::WordMirror`] and keeps an advisory bucket-occupancy
//! bitmap, probed once per malloc, that predicts the morecore decision —
//! emission stays bit-identical to [`crate::reference::bsd`].

use sim_mem::{Address, MemCtx};

use crate::shadow::WordMirror;
use crate::{AllocError, AllocStats, Allocator};

/// Smallest block size class in 4.2 BSD, 2^4 = 16 bytes (12-byte
/// payload).
pub const MIN_SHIFT: u32 = 4;

/// Largest supported class, 2^27 = 128 MiB.
pub const MAX_SHIFT: u32 = 27;

/// Number of size classes in the 4.2 BSD configuration.
pub const NBUCKETS: usize = (MAX_SHIFT - MIN_SHIFT + 1) as usize;

/// Granularity of `morecore`: a class obtains at least this many bytes of
/// fresh storage at once (one page, as in 4.2 BSD).
pub const PAGE: u32 = 4096;

const HDR: u64 = 4;

/// Configuration knobs, exposed for the design-space sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsdConfig {
    /// log2 of the smallest block size class: requests round up to a
    /// power of two no smaller than `1 << min_shift`. 4.2 BSD shipped 4
    /// (16-byte blocks); smaller values waste less on tiny objects,
    /// larger values trade internal fragmentation for fewer classes.
    /// Must lie in `3..=MAX_SHIFT`.
    pub min_shift: u32,
}

impl Default for BsdConfig {
    fn default() -> Self {
        BsdConfig { min_shift: MIN_SHIFT }
    }
}

/// Kingsley's BSD allocator. See the module docs.
#[derive(Debug)]
pub struct Bsd {
    /// Static area: one list-head word per bucket.
    heads: Address,
    config: BsdConfig,
    /// Number of buckets under this configuration.
    nbuckets: u32,
    stats: AllocStats,
    /// Shared mirror of every metadata word this allocator stores.
    mirror: WordMirror,
    /// Advisory occupancy bitmap: bit `k` set iff bucket `k`'s freelist
    /// is non-empty. Checked against the loaded head in debug builds.
    occupied: u32,
}

impl Bsd {
    /// Creates a BSD allocator in the 4.2 BSD configuration, reserving
    /// its bucket array in the static area at the current heap frontier.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the static area cannot be reserved.
    pub fn new(ctx: &mut MemCtx<'_>) -> Result<Self, AllocError> {
        Self::with_config(ctx, BsdConfig::default())
    }

    /// Creates a BSD allocator with explicit knobs. The default config
    /// reproduces [`Bsd::new`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Oom`] if the static area cannot be reserved.
    ///
    /// # Panics
    ///
    /// Panics if `min_shift` lies outside `3..=MAX_SHIFT` (a block must
    /// hold its header-or-chain word, and at least one class must exist).
    pub fn with_config(ctx: &mut MemCtx<'_>, config: BsdConfig) -> Result<Self, AllocError> {
        assert!(
            (3..=MAX_SHIFT).contains(&config.min_shift),
            "min_shift {} outside 3..={MAX_SHIFT}",
            config.min_shift
        );
        let nbuckets = MAX_SHIFT - config.min_shift + 1;
        let mut mirror = WordMirror::new();
        let heads = ctx.sbrk(u64::from(nbuckets) * 4)?;
        for i in 0..nbuckets {
            mirror.store(ctx, heads + u64::from(i) * 4, 0);
        }
        Ok(Bsd { heads, config, nbuckets, stats: AllocStats::new(), mirror, occupied: 0 })
    }

    /// The bucket index serving a payload request of `size` bytes in the
    /// 4.2 BSD configuration, or `None` if the request exceeds the
    /// largest class.
    pub fn bucket_for(size: u32) -> Option<u32> {
        let total = u64::from(size) + HDR;
        let shift = total.next_power_of_two().trailing_zeros().max(MIN_SHIFT);
        (shift <= MAX_SHIFT).then_some(shift - MIN_SHIFT)
    }

    /// The block size (header included) of bucket `k` in the 4.2 BSD
    /// configuration.
    pub fn bucket_size(k: u32) -> u32 {
        1 << (k + MIN_SHIFT)
    }

    /// [`Bsd::bucket_for`] under this instance's rounding classes.
    fn bucket_index(&self, size: u32) -> Option<u32> {
        let total = u64::from(size) + HDR;
        let shift = total.next_power_of_two().trailing_zeros().max(self.config.min_shift);
        (shift <= MAX_SHIFT).then_some(shift - self.config.min_shift)
    }

    /// The block size (header included) of bucket `k` under this
    /// instance's rounding classes.
    fn block_size(&self, k: u32) -> u32 {
        1 << (k + self.config.min_shift)
    }

    fn head_addr(&self, k: u32) -> Address {
        self.heads + u64::from(k) * 4
    }

    /// Obtains fresh storage for bucket `k` and threads it onto the
    /// (empty) freelist, touching each new block once — the cold-start
    /// cost of a class.
    fn morecore(&mut self, k: u32, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        let bsize = self.block_size(k);
        let grab = bsize.max(PAGE);
        let start = ctx.sbrk(u64::from(grab))?;
        let nblocks = grab / bsize;
        ctx.ops(4);
        // Chain the blocks: each block's first word points at the next,
        // the last at the old head (NULL here).
        for i in 0..nblocks {
            let b = start + u64::from(i * bsize);
            let next = if i + 1 < nblocks { (b + u64::from(bsize)).raw() as u32 } else { 0 };
            self.mirror.store(ctx, b, next);
            ctx.ops(2);
        }
        self.mirror.store(ctx, self.head_addr(k), start.raw() as u32);
        self.occupied |= 1 << k;
        Ok(())
    }
}

impl Allocator for Bsd {
    fn name(&self) -> &'static str {
        "BSD"
    }

    fn malloc(&mut self, size: u32, ctx: &mut MemCtx<'_>) -> Result<Address, AllocError> {
        let k = self.bucket_index(size).ok_or(AllocError::Unsupported(size))?;
        ctx.ops(4);
        // Advisory probe: the bitmap predicts the morecore decision the
        // head load is about to make.
        ctx.obs_add(obs::names::BITMAP_PROBE, 1);
        let predicted = self.occupied & (1 << k) != 0;
        let mut b = self.mirror.load(ctx, self.head_addr(k));
        debug_assert_eq!(predicted, b != 0, "occupancy bit stale for bucket {k}");
        if b == 0 {
            self.morecore(k, ctx)?;
            b = self.mirror.load(ctx, self.head_addr(k));
        }
        let block = Address::new(u64::from(b));
        // Pop: head takes the block's chain word; the chain word then
        // becomes the in-use header identifying the bucket.
        let next = self.mirror.load(ctx, block);
        self.mirror.store(ctx, self.head_addr(k), next);
        if next == 0 {
            self.occupied &= !(1 << k);
        }
        self.mirror.store(ctx, block, k | 0x4d50_0000); // "MP" magic | bucket, as 4.2 BSD
                                                        // Segregated storage never searches: the explicit zero keeps the
                                                        // per-malloc search-length histogram comparable across
                                                        // allocators (paper finding 1).
        ctx.obs_observe("alloc.search_len", 0);
        self.stats.note_malloc(size, self.block_size(k));
        Ok(block + HDR)
    }

    fn free(&mut self, ptr: Address, ctx: &mut MemCtx<'_>) -> Result<(), AllocError> {
        if ptr.raw() < HDR || !ctx.heap().contains(ptr - HDR, HDR) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let block = ptr - HDR;
        let header = self.mirror.load(ctx, block);
        ctx.ops(3);
        if header >> 16 != 0x4d50 {
            return Err(AllocError::InvalidFree(ptr));
        }
        let k = header & 0xffff;
        if k >= self.nbuckets {
            return Err(AllocError::InvalidFree(ptr));
        }
        // Push: block takes the old head in its chain word.
        let old = self.mirror.load(ctx, self.head_addr(k));
        self.mirror.store(ctx, block, old);
        self.mirror.store(ctx, self.head_addr(k), block.raw() as u32);
        self.occupied |= 1 << k;
        // BSD never coalesces; record the zero so the histogram covers
        // every free.
        ctx.obs_observe("alloc.coalesce_per_free", 0);
        self.stats.note_free(self.block_size(k));
        Ok(())
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CountingSink, HeapImage, InstrCounter};

    struct Fx {
        heap: HeapImage,
        sink: CountingSink,
        instrs: InstrCounter,
    }

    impl Fx {
        fn new() -> Self {
            Fx { heap: HeapImage::new(), sink: CountingSink::new(), instrs: InstrCounter::new() }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx::new(&mut self.heap, &mut self.sink, &mut self.instrs)
        }
    }

    #[test]
    fn bucket_mapping_rounds_to_powers_of_two() {
        // 12-byte payload + 4-byte header = 16 → bucket 0.
        assert_eq!(Bsd::bucket_for(12), Some(0));
        // 13 bytes + header = 17 → 32 → bucket 1.
        assert_eq!(Bsd::bucket_for(13), Some(1));
        assert_eq!(Bsd::bucket_for(0), Some(0));
        assert_eq!(Bsd::bucket_for(28), Some(1));
        assert_eq!(Bsd::bucket_for(29), Some(2));
        assert_eq!(Bsd::bucket_for(u32::MAX), None);
        assert_eq!(Bsd::bucket_size(0), 16);
        assert_eq!(Bsd::bucket_size(3), 128);
    }

    #[test]
    fn lifo_reuse_is_immediate() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bsd = Bsd::new(&mut ctx).unwrap();
        let a = bsd.malloc(20, &mut ctx).unwrap();
        let b = bsd.malloc(20, &mut ctx).unwrap();
        bsd.free(a, &mut ctx).unwrap();
        bsd.free(b, &mut ctx).unwrap();
        // LIFO: last freed, first reallocated.
        assert_eq!(bsd.malloc(20, &mut ctx).unwrap(), b);
        assert_eq!(bsd.malloc(20, &mut ctx).unwrap(), a);
    }

    #[test]
    fn different_classes_never_mix() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bsd = Bsd::new(&mut ctx).unwrap();
        let small = bsd.malloc(8, &mut ctx).unwrap();
        bsd.free(small, &mut ctx).unwrap();
        // A 100-byte request must not reuse the 16-byte block.
        let big = bsd.malloc(100, &mut ctx).unwrap();
        assert_ne!(big, small);
    }

    #[test]
    fn morecore_carves_a_full_page_of_small_blocks() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bsd = Bsd::new(&mut ctx).unwrap();
        let before = ctx.heap().in_use();
        let first = bsd.malloc(12, &mut ctx).unwrap();
        assert_eq!(ctx.heap().in_use() - before, 4096);
        // The next 255 allocations of the class consume no new heap.
        let mut last = first;
        for _ in 0..255 {
            last = bsd.malloc(12, &mut ctx).unwrap();
        }
        assert_eq!(ctx.heap().in_use() - before, 4096);
        assert!(last > first);
        // The 257th does.
        bsd.malloc(12, &mut ctx).unwrap();
        assert_eq!(ctx.heap().in_use() - before, 8192);
    }

    #[test]
    fn internal_fragmentation_is_severe_for_awkward_sizes() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bsd = Bsd::new(&mut ctx).unwrap();
        // A 33-byte request needs 37 with header → 64-byte class.
        bsd.malloc(33, &mut ctx).unwrap();
        assert_eq!(bsd.stats().live_granted, 64);
    }

    #[test]
    fn coarser_rounding_classes_grant_more() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        // min_shift 6: every class is at least 64 bytes.
        let mut bsd = Bsd::with_config(&mut ctx, BsdConfig { min_shift: 6 }).unwrap();
        let a = bsd.malloc(12, &mut ctx).unwrap();
        assert_eq!(bsd.stats().live_granted, 64);
        bsd.free(a, &mut ctx).unwrap();
        // A 40-byte request reuses the same class (44 with header → 64).
        assert_eq!(bsd.malloc(40, &mut ctx).unwrap(), a);
    }

    #[test]
    fn finer_rounding_classes_grant_less() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bsd = Bsd::with_config(&mut ctx, BsdConfig { min_shift: 3 }).unwrap();
        // 4-byte payload + 4-byte header = 8 → the new smallest class.
        bsd.malloc(4, &mut ctx).unwrap();
        assert_eq!(bsd.stats().live_granted, 8);
    }

    #[test]
    fn invalid_free_detected_by_magic() {
        let mut fx = Fx::new();
        let mut ctx = fx.ctx();
        let mut bsd = Bsd::new(&mut ctx).unwrap();
        let a = bsd.malloc(24, &mut ctx).unwrap();
        bsd.free(a, &mut ctx).unwrap();
        // Double free: the header word now holds a chain pointer, not the
        // magic.
        assert_eq!(bsd.free(a, &mut ctx), Err(AllocError::InvalidFree(a)));
    }

    #[test]
    fn malloc_cost_is_constant_after_warmup() {
        let mut fx = Fx::new();
        {
            let mut ctx = fx.ctx();
            let mut bsd = Bsd::new(&mut ctx).unwrap();
            bsd.malloc(24, &mut ctx).unwrap();
            let before = fx.instrs.total();
            let mut ctx = fx.ctx();
            bsd.malloc(24, &mut ctx).unwrap();
            let cost_one = fx.instrs.total() - before;
            let before = fx.instrs.total();
            let mut ctx = fx.ctx();
            bsd.malloc(24, &mut ctx).unwrap();
            assert_eq!(fx.instrs.total() - before, cost_one);
            assert!(cost_one < 20, "warm BSD malloc is a handful of instructions");
        }
    }
}
