//! Umbrella crate for the `alloc-locality` workspace.
//!
//! This crate exists to host the cross-crate integration tests (in
//! `tests/`) and the runnable examples (in `examples/`). It re-exports the
//! member crates so examples can use a single dependency root.

pub use alloc_locality as engine;
pub use allocators;
pub use cache_sim;
pub use sim_mem;
pub use vm_sim;
pub use workloads;
