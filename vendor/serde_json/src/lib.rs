//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde::Value` model to JSON text and parses
//! JSON text back. Supports exactly the workspace's usage: `to_string`,
//! `to_string_pretty`, `to_value`, `from_str`, `from_value`, and the
//! re-exported [`Value`].
//!
//! Numbers: non-negative integers print as unsigned decimals, negative
//! as signed; floats print via Rust's shortest-round-trip `Display`,
//! with a `.0` suffix forced onto integral floats so they re-parse as
//! floats. Non-finite floats print as `null` (matching serde_json's
//! lossy default).

use std::fmt::Write as _;

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Parse/serialize error: message plus byte offset for parse errors.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error { msg: msg.into(), offset: Some(offset) }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {}", self.msg, at),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string(), offset: None }
    }
}

/// Converts any serializable value to the intermediate [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a deserializable value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    push_sep(out, indent, depth + 1);
                }
                write_value(out, item, indent, depth + 1);
            }
        }),
        Value::Object(pairs) => write_seq(out, indent, depth, pairs.is_empty(), '{', '}', |out| {
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    push_sep(out, indent, depth + 1);
                }
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * (depth + 1)));
        body(out);
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    } else {
        body(out);
    }
    out.push(close);
}

fn push_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    out.push(',');
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let text = format!("{f}");
    out.push_str(&text);
    // `1.0f64` displays as "1"; force a float marker so it re-parses as
    // a float (harmless for equality, faithful to serde_json's output).
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", byte as char), self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| {
                        Error::parse("unterminated escape", self.pos)
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::parse(
                                        "unpaired high surrogate",
                                        self.pos,
                                    ));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error::parse("invalid unicode escape", self.pos)
                            })?);
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str, so the
                    // bytes are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse("invalid utf-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(format!("invalid number `{text}`"), start));
        }
        if negative {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::parse(format!("invalid integer `{text}`"), start))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::parse(format!("invalid integer `{text}`"), start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64).unwrap()).unwrap(), 0.1);
        assert_eq!(from_str::<f64>(&to_string(&3.0f64).unwrap()).unwrap(), 3.0);
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{1F600}\u{8}";
        let json = to_string(&tricky.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), tricky);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("b".into(), Value::Object(vec![])),
            ("c".into(), Value::Str("x".into())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u32>>(" [ 1 , 2 , 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
