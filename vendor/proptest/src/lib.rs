//! Offline stand-in for `proptest`.
//!
//! Provides deterministic, generate-only property testing with the API
//! surface this workspace uses: the [`Strategy`] trait with `prop_map`,
//! range and tuple strategies, [`Just`], `prop_oneof!`, `any::<T>()`,
//! `collection::vec`, `sample::Index`, `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case number and seed instead of a minimized input), and the
//! generation streams differ. Seeds are derived from the test name, so
//! runs are reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply draws a value from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, map: f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe strategies; `prop_map`/`boxed` require `Sized`, so
    /// `dyn Strategy` works for generation.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.map)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.random_range(0..self.total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if roll < weight {
                    return arm.generate(rng);
                }
                roll -= weight;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Builds one weighted `prop_oneof!` arm with unified value types.
    pub fn weighted<S>(weight: u32, strategy: S) -> (u32, BoxedStrategy<S::Value>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(strategy))
    }

    macro_rules! numeric_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Floats are sampled from a unit draw so rand only needs an f64
    // half-open range impl (a second float impl there would break
    // unsuffixed-literal inference).
    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range");
                    self.start + (self.end - self.start) * rng.random::<f64>() as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty float range");
                    lo + (hi - lo) * rng.random::<f64>() as $t
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — uniform over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.random()
        }
    }

    macro_rules! arbitrary_uints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_uints!(u8, u16, u32, u64, usize);

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(i8, i16, i32, i64, isize);
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An index drawn before the collection length is known; `index(len)`
    /// maps it uniformly into `0..len`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Index {
            Index(rng.random::<u64>() as usize)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Inclusive (min, max) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test deterministic RNG: seeded from the test name and case
    /// number, so failures reproduce across runs.
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case ordinal.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case))))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs property-test functions: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that draws `cases` inputs and checks the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $crate::__proptest_one! { ($cfg) [$(#[$meta])*] $name [] ($($args)*) $body }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Normalizes one test's parameter list: `pat in strategy` stays as-is,
/// `name: Type` becomes `name in any::<Type>()`; then emits the test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    // All parameters consumed: emit the test function.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$(($arg:pat, $strat:expr))+] () $body:block) => {
        $($meta)*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    ::core::panic!(
                        "proptest `{}` failed on case {} of {}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e
                    );
                }
            }
        }
    };
    // `pat in strategy`, more parameters follow.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:pat in $strat:expr, $($more:tt)*) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] $name [$($acc)* ($arg, $strat)] ($($more)*) $body }
    };
    // `pat in strategy`, final parameter.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:pat in $strat:expr) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] $name [$($acc)* ($arg, $strat)] () $body }
    };
    // `name: Type`, more parameters follow.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:ident : $ty:ty, $($more:tt)*) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] $name [$($acc)* ($arg, $crate::arbitrary::any::<$ty>())] ($($more)*) $body }
    };
    // `name: Type`, final parameter.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:ident : $ty:ty) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] $name [$($acc)* ($arg, $crate::arbitrary::any::<$ty>())] () $body }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::weighted($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::weighted(1u32, $strat)),+
        ])
    };
}

/// Asserts inside a proptest body; fails the case rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b, flip) in (0u64..100, 5u32..=9, any::<bool>())) {
            prop_assert!(a < 100);
            prop_assert!((5..=9).contains(&b));
            prop_assert!(flip || !flip);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn oneof_and_map(
            op in prop_oneof![
                2 => (1u32..10).prop_map(|n| n * 2),
                1 => Just(99u32),
            ],
        ) {
            prop_assert!(op == 99 || (op % 2 == 0 && op < 20));
        }

        #[test]
        fn index_stays_in_bounds(i in any::<crate::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    fn determinism_across_invocations() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0u64..1000);
        let mut a = crate::test_runner::TestRng::for_case("determinism", 3);
        let mut b = crate::test_runner::TestRng::for_case("determinism", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
