//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build container has no network access and no registry cache, so the
//! workspace patches `rand` to this vendored implementation. It provides the
//! exact subset of the rand 0.9 API used by the workspace — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` convenience methods
//! (`random`, `random_bool`, `random_range`) — backed by a deterministic
//! xoshiro256** generator seeded through splitmix64.
//!
//! Streams are deterministic per seed, which is all the simulation needs;
//! they do **not** match the bit streams of the real rand crate (which uses
//! ChaCha12 for `StdRng`).

/// Low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::random`] from a uniform bit stream.
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize);

// Only f64 gets a float range impl: a second float impl would make
// `random_range(0.8..1.2)` ambiguous for unsuffixed literals (two
// candidate impls block inference before the {float} → f64 fallback).
impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.random::<f64>() < p
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator && denominator > 0);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** — small, fast, and plenty for driving simulations.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256StarStar};

    /// Deterministic standard generator (xoshiro256** here, ChaCha12 in
    /// the real crate — seeds are portable, streams are not).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256StarStar);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256StarStar::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Alias so code written against `SmallRng` also resolves.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u32 = rng.random_range(3..=3);
            assert_eq!(y, 3);
            let z: f64 = rng.random_range(0.8..1.2);
            assert!((0.8..1.2).contains(&z));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let k: usize = rng.random_range(0..5);
            assert!(k < 5);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }
}
