//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are not available in this container, so the derives
//! parse the item by walking `proc_macro::TokenTree`s directly and emit
//! the generated impl by formatting source text and re-parsing it. The
//! supported shape is exactly what this workspace uses:
//!
//! * structs with named fields, tuple structs (incl. newtypes), unit
//!   structs — no generics;
//! * enums with unit / newtype / tuple / struct variants — no generics;
//! * the `#[serde(default)]` field attribute.
//!
//! Generated code follows serde's data model so JSON produced by the
//! real serde_json parses identically: structs are objects, newtype
//! structs are their inner value, enums are externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields; 1 == newtype.
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// True if an attribute group (the `[...]` after `#`) is `serde(default)`.
fn is_serde_default(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Consumes leading attributes (incl. doc comments); returns whether any
/// was `#[serde(default)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut default = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.next() {
            if is_serde_default(&g) {
                default = true;
            }
        }
    }
    default
}

/// Consumes a `pub` / `pub(crate)` visibility prefix if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Parses `name: Type, name: Type, ...` (a named-field body).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected field name, found `{other}`"),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-depth zero.
        // Parenthesised/bracketed types are single groups, so only `<`/`>`
        // need depth tracking.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
            tokens.next();
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in stream {
        any = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected variant name, found `{other}`"),
            None => break,
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip a `= discriminant` and the separating comma.
        for tt in tokens.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "pub" => {
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                }
                "struct" => {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde derive: expected struct name, found {other:?}"),
                    };
                    return match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                            panic!("serde derive (vendored): generic struct `{name}` unsupported")
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                            Item::UnitStruct { name }
                        }
                        other => panic!("serde derive: unexpected token after struct name: {other:?}"),
                    };
                }
                "enum" => {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde derive: expected enum name, found {other:?}"),
                    };
                    return match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                            panic!("serde derive (vendored): generic enum `{name}` unsupported")
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Item::Enum { name, variants: parse_variants(g.stream()) }
                        }
                        other => panic!("serde derive: expected enum body, found {other:?}"),
                    };
                }
                _ => {}
            },
            Some(_) => {}
            None => panic!("serde derive: no struct or enum found in input"),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_body(item: &Item) -> String {
    match item {
        Item::NamedStruct { fields, .. } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Item::TupleStruct { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::TupleStruct { arity, .. } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{tag} => ::serde::Value::Str(::std::string::String::from(\"{tag}\"))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{tag}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag}\"), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{tag}({binds}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag}\"), ::serde::Value::Array(::std::vec![{vals}]))])",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{tag} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag}\"), ::serde::Value::Object(::std::vec![{pairs}]))])",
                                binds = binds.join(", "),
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(",\n"))
        }
    }
}

/// `Ok(Name { field: ..., ... })` construction from an object binding
/// named `__fields`.
fn named_fields_ctor(path: &str, fields: &[Field], type_label: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{}` in {}\"))",
                    f.name, type_label
                )
            };
            format!(
                "{0}: match ::serde::__find_field(__fields, \"{0}\") {{ ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, ::std::option::Option::None => {missing} }}",
                f.name
            )
        })
        .collect();
    format!("::std::result::Result::Ok({path} {{ {} }})", inits.join(", "))
}

fn deserialize_body(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => format!(
            "let __fields = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for struct {name}\"))?;\n{}",
            named_fields_ctor(name, fields, name)
        ),
        Item::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for struct {name}\"))?;\nif __items.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for struct {name}\")); }}\n::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), _ => ::std::result::Result::Err(::serde::Error::custom(\"expected null for unit struct {name}\")) }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0})", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}(::serde::Deserialize::from_value(__inner)?))",
                        v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{0}\" => {{ let __items = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for variant {name}::{0}\"))?; if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for variant {name}::{0}\")); }} ::std::result::Result::Ok({name}::{0}({elems})) }}",
                            v.name,
                            elems = elems.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let path = format!("{name}::{}", v.name);
                        let label = path.clone();
                        Some(format!(
                            "\"{0}\" => {{ let __fields = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for variant {label}\"))?; {ctor} }}",
                            v.name,
                            ctor = named_fields_ctor(&path, fields, &label)
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}{unit_comma}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown unit variant `{{__other}}` for enum {name}\")))\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}{tagged_comma}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` for enum {name}\")))\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"invalid value of kind {{}} for enum {name}\", __other.kind())))\n\
                 }}",
                unit_arms = unit_arms.join(",\n"),
                unit_comma = if unit_arms.is_empty() { "" } else { "," },
                tagged_arms = tagged_arms.join(",\n"),
                tagged_comma = if tagged_arms.is_empty() { "" } else { "," },
            )
        }
    }
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         {body}\n\
         }}\n\
         }}",
        name = item_name(&item),
        body = serialize_body(&item)
    );
    code.parse().expect("serde derive: generated Serialize impl fails to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}",
        name = item_name(&item),
        body = deserialize_body(&item)
    );
    code.parse().expect("serde derive: generated Deserialize impl fails to parse")
}
