//! Offline stand-in for `criterion`.
//!
//! Implements just enough of the criterion API to compile and run this
//! workspace's benches: `Criterion::default().sample_size(..)`,
//! `bench_function`, `benchmark_group`/`finish`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros (both the simple
//! and the `name/config/targets` forms).
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed iterations, and prints the mean
//! and min wall-clock time per iteration. No statistics, no HTML
//! reports, no baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: one untimed run.
        std_black_box(body());
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(body());
            self.timings.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.timings.is_empty() {
            println!("{label}: no samples");
            return;
        }
        let total: Duration = self.timings.iter().sum();
        let mean = total / self.timings.len() as u32;
        let min = self.timings.iter().min().copied().unwrap_or_default();
        println!(
            "{label}: mean {mean:?}, min {min:?} over {} samples",
            self.timings.len()
        );
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, timings: Vec::new() };
        body(&mut bencher);
        bencher.report(&id);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(label, body);
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, t1, t2)`
/// or the braced `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
