//! Offline stand-in for `serde`.
//!
//! The build container has no network access, so the workspace patches
//! `serde` to this vendored implementation. Instead of serde's
//! visitor-based zero-copy architecture, this crate routes everything
//! through one self-describing [`Value`] tree:
//!
//! * [`Serialize::to_value`] turns a Rust value into a [`Value`];
//! * [`Deserialize::from_value`] turns a [`Value`] back into Rust.
//!
//! `serde_json` (also vendored) renders `Value` to JSON text and parses
//! JSON text back into `Value`. The derive macros in `serde_derive`
//! generate `to_value`/`from_value` bodies that follow serde's data
//! model: structs as objects, newtype structs as their inner value,
//! enums externally tagged (`"Unit"`, `{"Newtype": v}`,
//! `{"Tuple": [..]}`, `{"Struct": {..}}`), and `#[serde(default)]`
//! falling back to `Default::default()` on missing fields.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate representation every value passes
/// through.
///
/// Unsigned and signed integers are distinct so `u64` values above
/// `i64::MAX` survive round-trips; JSON parsing produces `UInt` for
/// non-negative integer literals and `Int` for negative ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (never reordered, so output is
    /// deterministic and mirrors field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a message, nothing more.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Field lookup used by derived `from_value` impls.
#[doc(hidden)]
pub fn __find_field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        Error::custom(format!("integer {u} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            // serde_json prints non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected float, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

/// Map keys must render as JSON object keys (strings), mirroring
/// serde_json's integer-key stringification.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse::<$t>().map_err(|_| {
                    Error::custom(format!(
                        "invalid {} map key `{key}`",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(entries.into_iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected map object, found {}", v.kind())))?;
        pairs.iter().map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?))).collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected map object, found {}", v.kind())))?;
        pairs.iter().map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?))).collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, found {}", v.kind()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u64, u64, u64)> = vec![(1, 2, 3), (4, 5, 6)];
        assert_eq!(Vec::<(u64, u64, u64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let a: [u64; 3] = [7, 8, 9];
        assert_eq!(<[u64; 3]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
